#include "serve/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <sstream>

#include "fabric/timing_model.hpp"
#include "fabric/validator_backend.hpp"
#include "obs/telemetry.hpp"
#include "workload/caliper.hpp"
#include "workload/chaincode.hpp"

namespace bm::serve {

namespace {

/// Per-request lifecycle timestamps; ids index the records array.
struct Record {
  enum class Fate : std::uint8_t {
    kPending = 0,
    kShed,
    kTimedOut,
    kCommitted,
    kRejected,  ///< refused by the session layer (never reached admission)
  };
  Fate fate = Fate::kPending;
  fabric::TxValidationCode flag = fabric::TxValidationCode::kNotValidated;
  int klass = 0;  ///< rate class (per-class breakdown when sessions are on)
  sim::Time arrived = 0;
  sim::Time dispatched = 0;  ///< endorsement service start
  sim::Time endorsed = 0;
  sim::Time ordered = 0;  ///< block cut
  sim::Time committed = 0;
};

/// A cut block waiting for (or in) the commit stage.
struct CutBlock {
  fabric::Block block;
  std::vector<std::uint64_t> members;  ///< request ids, envelope order
  sim::Time cut_at = 0;
};

class ServeRun {
 public:
  ServeRun(const ServeOptions& options, obs::Registry* registry,
           obs::Tracer* tracer)
      : options_(options),
        harness_(sized_network(options)),
        traffic_(options.traffic),
        admission_(sized_admission(options)),
        endorse_(sim_, options.endorse, harness_, admission_),
        class_rng_(options.network.seed ^ 0xC2B2AE3D27D4EB4Full),
        session_rng_(options.network.seed ^ 0xD1B54A32D192ED03ull),
        registry_(registry),
        tracer_(tracer) {
    if (options_.check_equivalence) options_.keep_blocks = true;

    if (options_.sessions.enabled) {
      sessions_ = std::make_unique<SessionManager>(sim_, harness_.msp(),
                                                   options_.sessions);
      mix_ = std::make_unique<SessionMix>(
          options_.sessions.population, options_.sessions.zipf_s,
          options_.sessions.rate_classes, options_.high_priority_share,
          options_.network.seed ^ 0xA0761D6478BD642Full);
      client_session_.assign(mix_->population(), kNoSession);
      // Client certificate pool: real identities issued by the harness's
      // registered CAs (so they validate), shared round-robin across the
      // population. One rogue CA mints the forged-handshake certs.
      const std::size_t pool =
          options_.sessions.cert_pool > 0 ? options_.sessions.cert_pool : 1;
      cert_pool_.reserve(pool);
      const std::size_t orgs = harness_.msp().org_count();
      for (std::size_t i = 0; i < pool; ++i) {
        const auto* ca = harness_.msp().find_org(
            static_cast<std::uint8_t>(1 + i % orgs));
        cert_pool_.push_back(
            ca->issue(fabric::Role::kClient,
                      static_cast<std::uint8_t>(i % 16),
                      "client" + std::to_string(i) + ".serve")
                .cert);
      }
      const fabric::CertificateAuthority rogue("RogueOrg", 200);
      rogue_cert_ = rogue.issue(fabric::Role::kClient, 0, "rogue.serve").cert;
    }

    // Commit-stage timing model inputs, fixed for the run.
    const auto& policy = harness_.policies().at(harness_.chaincode_name());
    endorsements_per_tx_ = static_cast<int>(policy.principals().size());
    if (options_.network.chaincode == workload::ChaincodeKind::kSmallbank) {
      const workload::SmallbankChaincode cc(options_.network.smallbank);
      db_reads_per_tx_ = cc.avg_reads();
      db_writes_per_tx_ = cc.avg_writes();
    } else {
      const workload::DrmChaincode cc(options_.network.drm);
      db_reads_per_tx_ = cc.avg_reads();
      db_writes_per_tx_ = cc.avg_writes();
    }

    if (tracer_ != nullptr) {
      tracer_->begin_process("serve:" + options_.name);
      lane_admission_ = tracer_->lane("admission");
      lane_ingress_ = tracer_->lane("orderer_ingress");
      lane_commit_ = tracer_->lane("validate_commit");
    }

    if (registry_ != nullptr) {
      // Live bindings: the same names assemble()'s publish() sets at the
      // end, incremented as events happen so the continuous-telemetry
      // sampler sees them move. The end-of-run .set() is idempotent.
      obs::Registry& registry = *registry_;
      admission_.attach_observability(registry, "serve_admission");
      endorse_.attach_observability(registry, "serve_endorse");
      if (sessions_ != nullptr) sessions_->attach_observability(registry);
      live_committed_ = &registry.counter("serve_txs_committed_total",
                                          "transactions committed");
      live_valid_ = &registry.counter("serve_txs_valid_total",
                                      "transactions flagged valid");
      live_blocks_ = &registry.counter("serve_blocks_committed_total",
                                       "blocks committed");
      live_ingress_pending_ =
          &registry.gauge("serve_ingress_pending", "drafts awaiting a cut");
      live_commit_backlog_ = &registry.gauge(
          "serve_commit_backlog", "blocks queued or in service right now");
      const auto buckets = obs::Histogram::latency_ms_buckets();
      h_wait_ = &registry.histogram(
          "serve_admission_wait_ms", buckets,
          "arrival -> endorsement dispatch (committed txs)");
      h_endorse_ = &registry.histogram("serve_endorse_ms", buckets,
                                       "endorsement service time");
      h_order_ = &registry.histogram("serve_order_wait_ms", buckets,
                                     "endorsed -> block cut");
      h_commit_ = &registry.histogram("serve_commit_ms", buckets,
                                      "block cut -> committed");
      h_total_ = &registry.histogram("serve_total_latency_ms", buckets,
                                     "arrival -> committed");
    }

    endorse_.set_completion([this](AdmittedRequest request,
                                   workload::TxDraft draft) {
      on_endorsed(request, std::move(draft));
    });
    endorse_.set_cancelled([this](AdmittedRequest request) {
      records_[request.id].fate = Record::Fate::kTimedOut;
    });
  }

  ServeReport run(obs::Telemetry* telemetry) {
    if (telemetry != nullptr && telemetry->enabled() && registry_ != nullptr) {
      telemetry->attach(sim_, *registry_, tracer_);
      flight_ = telemetry->flight();
      endorse_.set_flight_recorder(flight_);
    }
    // Flash-crowd option: handshake the whole population at t = 0, before
    // any arrival, so the run starts from a warm session table.
    if (sessions_ != nullptr && options_.sessions.preconnect)
      for (std::size_t client = 0; client < mix_->population(); ++client)
        ensure_session(client);
    schedule_next_arrival(traffic_.next_arrival());
    sim_.run_until(options_.duration + options_.drain_limit);
    ServeReport report = assemble();
    // The sampler/monitor hold recurring events on sim_, which dies with
    // this ServeRun — settle them (final sample + evaluation) before return.
    if (telemetry != nullptr) telemetry->finish();
    return report;
  }

 private:
  static workload::NetworkOptions sized_network(const ServeOptions& options) {
    workload::NetworkOptions network = options.network;
    // The ingress stage owns block cutting: the orderer's batch size is the
    // ingress max_batch, so a full batch cuts on its last submit and a
    // batch-timeout cut flushes a partial block.
    network.block_size = std::max<std::size_t>(1, options.ingress.max_batch);
    return network;
  }

  static AdmissionConfig sized_admission(const ServeOptions& options) {
    AdmissionConfig admission = options.admission;
    // Session rate classes feed the admission queue's per-class caps, so
    // the queue must have at least that many classes.
    if (options.sessions.enabled)
      admission.classes =
          std::max(admission.classes, options.sessions.rate_classes);
    return admission;
  }

  void schedule_next_arrival(sim::Time at) {
    if (at > options_.duration) return;
    sim_.schedule(at - sim_.now(), [this] {
      on_arrival();
      schedule_next_arrival(traffic_.next_arrival());
    });
  }

  /// The session a client submits on: the cached one if still usable, a
  /// resume() if it slipped into the grace window, otherwise a fresh
  /// handshake (which the bad_cert_share knob occasionally forges).
  /// kNoSession when the handshake was refused.
  SessionId ensure_session(std::size_t client) {
    SessionId id = client_session_[client];
    if (id != kNoSession) {
      if (sessions_->is_active(id)) return id;
      if (sessions_->resume(id, cert_pool_[client % cert_pool_.size()]) ==
          SessionVerdict::kOk)
        return id;
      client_session_[client] = kNoSession;  // purged: fresh handshake below
    }
    const bool forged = options_.sessions.bad_cert_share > 0 &&
                        session_rng_.chance(options_.sessions.bad_cert_share);
    const fabric::Certificate& cert =
        forged ? rogue_cert_ : cert_pool_[client % cert_pool_.size()];
    const SessionManager::OpenResult result =
        sessions_->open(cert, mix_->rate_class_of(client));
    client_session_[client] = result.id;
    return result.id;
  }

  void on_arrival() {
    const std::uint64_t id = records_.size();
    Record& record = records_.emplace_back();
    record.arrived = sim_.now();

    int klass = 0;
    SessionId session = kNoSession;
    if (sessions_ != nullptr) {
      const std::size_t client = mix_->next_client();
      record.klass = mix_->rate_class_of(client);
      session = ensure_session(client);
      if (session == kNoSession) {
        record.fate = Record::Fate::kRejected;
        ++rejected_session_;
        if (flight_ != nullptr)
          flight_->record(obs::FlightStage::kShed, id, "session_rejected");
        return;
      }
      // Well-behaved clients send the expected sequence number; the
      // misbehaviour knobs replay the previous one or skip ahead.
      const std::uint64_t expected = sessions_->expected_seq(session);
      std::uint64_t seq = expected;
      if (options_.sessions.duplicate_rate > 0 && expected > 0 &&
          session_rng_.chance(options_.sessions.duplicate_rate))
        seq = expected - 1;
      else if (options_.sessions.out_of_order_rate > 0 &&
               session_rng_.chance(options_.sessions.out_of_order_rate))
        seq = expected + 1;
      if (sessions_->submit(session, seq) != SessionVerdict::kOk) {
        record.fate = Record::Fate::kRejected;
        ++rejected_session_;
        if (flight_ != nullptr)
          flight_->record(obs::FlightStage::kShed, id, "session_rejected");
        return;
      }
      klass = sessions_->rate_class(session);
      record.klass = klass;
    } else if (admission_.config().classes > 1) {
      klass = class_rng_.chance(options_.high_priority_share) ? 0 : 1;
      record.klass = klass;
    }

    const std::uint64_t rate_sheds_before =
        admission_.stats().shed_rate_limited;
    const AdmissionDecision decision =
        admission_.offer(id, klass, sim_.now(), session);
    if (!decision.admitted()) {
      record.fate = Record::Fate::kShed;
      if (flight_ != nullptr)
        flight_->record(obs::FlightStage::kShed, id,
                        admission_.stats().shed_rate_limited >
                                rate_sheds_before
                            ? "rate_limited"
                            : "queue_full");
      return;
    }
    if (flight_ != nullptr) flight_->record(obs::FlightStage::kAdmitted, id);
    endorse_.pump();
  }

  void on_endorsed(const AdmittedRequest& request, workload::TxDraft draft) {
    Record& record = records_[request.id];
    record.endorsed = sim_.now();
    record.dispatched = sim_.now() - endorse_.service_time(draft);
    if (flight_ != nullptr)
      flight_->record(obs::FlightStage::kEndorsed, request.id);

    if (pending_members_.empty()) {
      batch_opened_ = sim_.now();
      batch_timer_ = sim_.schedule(options_.ingress.batch_timeout,
                                   [this] { cut_batch(); });
    }
    pending_members_.push_back(request.id);
    pending_drafts_.push_back(std::move(draft));
    ingress_high_water_ =
        std::max(ingress_high_water_, pending_members_.size());
    if (live_ingress_pending_ != nullptr)
      live_ingress_pending_->set(
          static_cast<double>(pending_members_.size()));
    if (pending_members_.size() >= options_.ingress.max_batch) {
      sim_.cancel(batch_timer_);
      cut_batch();
    }
  }

  void cut_batch() {
    if (pending_members_.empty()) return;
    std::vector<std::uint64_t> members = std::move(pending_members_);
    std::vector<workload::TxDraft> drafts = std::move(pending_drafts_);
    pending_members_.clear();
    pending_drafts_.clear();

    // The real ECDSA work, fanned across the endorsement service's thread
    // pool (wall clock only — the simulated signing cost was part of the
    // endorsement service time).
    std::vector<Bytes> envelopes = endorse_.sign_envelopes(drafts);
    std::optional<fabric::Block> block;
    for (auto& envelope : envelopes)
      block = harness_.submit_envelope(std::move(envelope));
    if (!block) block = harness_.flush_block();  // batch-timeout partial cut

    for (const std::uint64_t id : members) {
      records_[id].ordered = sim_.now();
      if (flight_ != nullptr)
        flight_->record(obs::FlightStage::kOrdered, id);
    }
    if (live_ingress_pending_ != nullptr) live_ingress_pending_->set(0);
    if (tracer_ != nullptr)
      tracer_->complete(lane_ingress_,
                        "batch " + std::to_string(block->header.number),
                        "serve", batch_opened_, sim_.now(),
                        {{"txs", static_cast<std::uint64_t>(members.size())}});

    commit_queue_.push_back(
        CutBlock{std::move(*block), std::move(members), sim_.now()});
    commit_backlog_high_water_ =
        std::max(commit_backlog_high_water_, commit_backlog());
    if (live_commit_backlog_ != nullptr)
      live_commit_backlog_->set(static_cast<double>(commit_backlog()));
    update_pressure();
    pump_commit();
  }

  std::size_t commit_backlog() const {
    return commit_queue_.size() + (commit_busy_ ? 1 : 0);
  }

  void update_pressure() {
    const std::size_t backlog = commit_backlog();
    if (backlog >= options_.ingress.high_watermark) {
      if (!admission_.pressure() && tracer_ != nullptr)
        tracer_->instant(lane_admission_, "pressure on", "serve", sim_.now());
      admission_.set_pressure(true, sim_.now());
    } else if (backlog <= options_.ingress.low_watermark) {
      if (admission_.pressure() && tracer_ != nullptr)
        tracer_->instant(lane_admission_, "pressure off", "serve", sim_.now());
      admission_.set_pressure(false, sim_.now());
    }
  }

  void pump_commit() {
    if (commit_busy_ || commit_queue_.empty()) return;
    CutBlock cut = std::move(commit_queue_.front());
    commit_queue_.pop_front();
    commit_busy_ = true;

    fabric::SwBlockWorkload shape;
    shape.n_tx = static_cast<int>(cut.block.tx_count());
    shape.endorsements_verified_per_tx = endorsements_per_tx_;
    shape.policy_literals = endorsements_per_tx_;
    shape.db_reads_per_tx = db_reads_per_tx_;
    shape.db_writes_per_tx = db_writes_per_tx_;
    shape.vcpus = options_.validate_vcpus;
    const sim::Time service = fabric::SwTimingModel{}.block_latency(shape);

    sim_.schedule(service, [this, cut = std::move(cut),
                            started = sim_.now()]() mutable {
      const fabric::BlockValidationResult& result =
          harness_.commit_block(cut.block);
      for (std::size_t i = 0; i < cut.members.size(); ++i) {
        Record& record = records_[cut.members[i]];
        record.fate = Record::Fate::kCommitted;
        record.flag = result.flags[i];
        record.committed = sim_.now();
        observe_latencies(record);
        if (flight_ != nullptr)
          flight_->record(obs::FlightStage::kCommitted, cut.members[i]);
      }
      if (flight_ != nullptr)
        flight_->record(obs::FlightStage::kValidated, cut.block.header.number,
                        "block");
      blocks_committed_ += 1;
      valid_txs_ += result.valid_tx_count;
      committed_txs_ += cut.members.size();
      last_commit_at_ = sim_.now();
      if (live_blocks_ != nullptr) live_blocks_->inc();
      if (live_valid_ != nullptr) live_valid_->inc(result.valid_tx_count);
      if (live_committed_ != nullptr) live_committed_->inc(cut.members.size());

      caliper_.record(workload::BlockObservation{
          cut.block.header.number, static_cast<std::uint32_t>(cut.members.size()),
          result.valid_tx_count, cut.cut_at, sim_.now(), sim_.now()});
      if (tracer_ != nullptr)
        tracer_->complete(
            lane_commit_, "block " + std::to_string(cut.block.header.number),
            "serve", started, sim_.now(),
            {{"valid", result.valid_tx_count}});
      if (options_.keep_blocks) blocks_.push_back(std::move(cut.block));

      commit_busy_ = false;
      if (live_commit_backlog_ != nullptr)
        live_commit_backlog_->set(static_cast<double>(commit_backlog()));
      update_pressure();
      pump_commit();
    });
  }

  /// Live per-stage latency observation at commit time; mirrors the report
  /// breakdown exactly (same records, same unit) so the end-of-run
  /// histograms equal what publish() used to bulk-observe.
  void observe_latencies(const Record& record) {
    if (h_total_ == nullptr) return;
    constexpr double kMs = static_cast<double>(sim::kMillisecond);
    h_wait_->observe(
        static_cast<double>(record.dispatched - record.arrived) / kMs);
    h_endorse_->observe(
        static_cast<double>(record.endorsed - record.dispatched) / kMs);
    h_order_->observe(
        static_cast<double>(record.ordered - record.endorsed) / kMs);
    h_commit_->observe(
        static_cast<double>(record.committed - record.ordered) / kMs);
    h_total_->observe(
        static_cast<double>(record.committed - record.arrived) / kMs);
  }

  ServeReport assemble() {
    ServeReport report;
    report.offered = records_.size();
    report.admitted = admission_.stats().admitted;
    report.shed_queue_full = admission_.stats().shed_queue_full;
    report.shed_rate_limited = admission_.stats().shed_rate_limited;
    report.timed_out = endorse_.stats().cancelled;
    report.committed_txs = committed_txs_;
    report.valid_txs = valid_txs_;
    report.blocks_committed = blocks_committed_;
    report.admission_depth_high_water = admission_.stats().depth_high_water;
    report.ingress_high_water = ingress_high_water_;
    report.commit_backlog_high_water = commit_backlog_high_water_;
    report.pressure_raised = admission_.stats().pressure_raised;
    report.finished_at = last_commit_at_ > 0 ? last_commit_at_ : sim_.now();

    if (sessions_ != nullptr) {
      report.sessions_enabled = true;
      report.rejected_session = rejected_session_;
      report.session_stats = sessions_->stats();
      report.sessions_active = sessions_->active_count();
      report.sessions_grace = sessions_->grace_count();
      report.session_table = sessions_->table_size();
      report.class_stats.resize(
          static_cast<std::size_t>(admission_.config().classes));
      for (const Record& record : records_) {
        auto& cls = report.class_stats[static_cast<std::size_t>(record.klass)];
        cls.offered += 1;
        switch (record.fate) {
          case Record::Fate::kRejected: cls.rejected += 1; break;
          case Record::Fate::kShed: cls.shed += 1; break;
          case Record::Fate::kTimedOut: cls.timed_out += 1; break;
          case Record::Fate::kCommitted: cls.committed += 1; break;
          case Record::Fate::kPending: break;
        }
      }
    }

    report.offered_tps =
        static_cast<double>(report.offered) /
        (static_cast<double>(options_.duration) / sim::kSecond);
    if (last_commit_at_ > 0)
      report.goodput_tps =
          static_cast<double>(valid_txs_) /
          (static_cast<double>(last_commit_at_) / sim::kSecond);

    report.drained = true;
    for (const Record& record : records_)
      if (record.fate == Record::Fate::kPending) report.drained = false;
    if (!report.drained && flight_ != nullptr)
      flight_->trigger("serve:drain_failure");

    // Per-stage latency breakdown over committed transactions.
    std::vector<double> wait, endorse, order, commit, total;
    for (const Record& record : records_) {
      if (record.fate != Record::Fate::kCommitted) continue;
      constexpr double kMs = static_cast<double>(sim::kMillisecond);
      wait.push_back(
          static_cast<double>(record.dispatched - record.arrived) / kMs);
      endorse.push_back(
          static_cast<double>(record.endorsed - record.dispatched) / kMs);
      order.push_back(
          static_cast<double>(record.ordered - record.endorsed) / kMs);
      commit.push_back(
          static_cast<double>(record.committed - record.ordered) / kMs);
      total.push_back(
          static_cast<double>(record.committed - record.arrived) / kMs);
    }
    report.admission_wait_ms = workload::summarize(wait);
    report.endorse_ms = workload::summarize(endorse);
    report.order_wait_ms = workload::summarize(order);
    report.commit_ms = workload::summarize(commit);
    report.total_ms = workload::summarize(total);

    if (options_.check_equivalence) verify_equivalence(report);
    if (registry_ != nullptr) publish(report);
    if (options_.keep_blocks) report.blocks = std::move(blocks_);
    return report;
  }

  /// Replay the committed chain through an independent software backend:
  /// every admitted-and-committed transaction must carry flags identical to
  /// the harness's (closed-loop) reference result, and the commit-hash
  /// chain must match the reference ledger.
  void verify_equivalence(ServeReport& report) {
    fabric::StateDb db;
    fabric::Ledger ledger;
    const auto backend =
        fabric::make_software_backend(harness_.msp(), harness_.policies());
    for (const fabric::Block& block : blocks_) {
      const auto result = backend->validate_and_commit(block, db, ledger);
      const auto& reference = harness_.reference_result(block.header.number);
      if (result.flags != reference.flags) {
        report.flags_match = false;
        report.mismatch =
            "flags diverge at block " + std::to_string(block.header.number);
        return;
      }
      const auto& expected =
          harness_.reference_ledger().at(block.header.number).commit_hash;
      if (result.commit_hash != expected) {
        report.flags_match = false;
        report.mismatch = "commit hash diverges at block " +
                          std::to_string(block.header.number);
        return;
      }
    }
    report.flags_match = true;
  }

  void publish(const ServeReport& report) {
    obs::Registry& registry = *registry_;
    admission_.publish_metrics(registry, "serve_admission");
    endorse_.publish_metrics(registry, "serve_endorse");
    if (sessions_ != nullptr) {
      sessions_->publish_metrics(registry);
      registry
          .counter("serve_session_rejected_total",
                   "arrivals refused by the session layer")
          .set(report.rejected_session);
    }
    // Durable-ledger accounting (bytes appended, fsyncs, snapshot age) when
    // the scenario persists its chain (docs/DURABILITY.md).
    if (harness_.durable() != nullptr)
      harness_.durable()->publish_metrics(registry, "serve_durable");
    registry.counter("serve_txs_committed_total", "transactions committed")
        .set(report.committed_txs);
    registry.counter("serve_txs_valid_total", "transactions flagged valid")
        .set(report.valid_txs);
    registry.counter("serve_blocks_committed_total", "blocks committed")
        .set(report.blocks_committed);
    registry.gauge("serve_offered_tps", "offered load").set(report.offered_tps);
    registry.gauge("serve_goodput_tps", "valid committed throughput")
        .set(report.goodput_tps);
    registry
        .gauge("serve_ingress_high_water", "most drafts awaiting a cut")
        .set(static_cast<double>(report.ingress_high_water));
    registry
        .gauge("serve_commit_backlog_high_water",
               "most blocks queued or in service at the commit stage")
        .set(static_cast<double>(report.commit_backlog_high_water));

    // Latency histograms were observed live at each commit
    // (observe_latencies); re-observing here would double-count.

    caliper_.record_shed(report.shed_total());
    caliper_.record_timeout(report.timed_out);
    caliper_.publish_metrics(registry);
  }

  ServeOptions options_;
  sim::Simulation sim_;
  workload::FabricNetworkHarness harness_;
  TrafficGenerator traffic_;
  AdmissionQueue admission_;
  EndorsementService endorse_;
  Rng class_rng_;
  Rng session_rng_;  ///< client-misbehaviour draws, decorrelated from arrivals
  std::unique_ptr<SessionManager> sessions_;  ///< null when sessions disabled
  std::unique_ptr<SessionMix> mix_;
  std::vector<SessionId> client_session_;  ///< per client, kNoSession if none
  std::vector<fabric::Certificate> cert_pool_;
  fabric::Certificate rogue_cert_;
  std::uint64_t rejected_session_ = 0;
  obs::Registry* registry_;
  obs::Tracer* tracer_;
  int lane_admission_ = 0, lane_ingress_ = 0, lane_commit_ = 0;

  // Live telemetry bindings; null without a registry.
  obs::Counter* live_committed_ = nullptr;
  obs::Counter* live_valid_ = nullptr;
  obs::Counter* live_blocks_ = nullptr;
  obs::Gauge* live_ingress_pending_ = nullptr;
  obs::Gauge* live_commit_backlog_ = nullptr;
  obs::Histogram* h_wait_ = nullptr;
  obs::Histogram* h_endorse_ = nullptr;
  obs::Histogram* h_order_ = nullptr;
  obs::Histogram* h_commit_ = nullptr;
  obs::Histogram* h_total_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;

  int endorsements_per_tx_ = 2;
  double db_reads_per_tx_ = 2.0, db_writes_per_tx_ = 2.0;

  std::vector<Record> records_;
  std::vector<std::uint64_t> pending_members_;
  std::vector<workload::TxDraft> pending_drafts_;
  sim::EventId batch_timer_ = 0;
  sim::Time batch_opened_ = 0;
  std::deque<CutBlock> commit_queue_;
  bool commit_busy_ = false;

  std::uint64_t committed_txs_ = 0, valid_txs_ = 0, blocks_committed_ = 0;
  std::size_t ingress_high_water_ = 0, commit_backlog_high_water_ = 0;
  sim::Time last_commit_at_ = 0;
  std::vector<fabric::Block> blocks_;
  workload::CaliperReport caliper_{"serve"};
};

}  // namespace

std::string ServeReport::to_text() const {
  std::ostringstream out;
  char line[220];
  const auto u = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::snprintf(line, sizeof(line),
                "offered %llu (%.0f tps)\n"
                "admitted %llu | shed %llu (queue %llu, rate %llu) | timed "
                "out %llu\n"
                "committed %llu txs (%llu valid) in %llu blocks | goodput "
                "%.0f tps\n",
                u(offered), offered_tps, u(admitted), u(shed_total()),
                u(shed_queue_full), u(shed_rate_limited), u(timed_out),
                u(committed_txs), u(valid_txs), u(blocks_committed),
                goodput_tps);
  out << line;
  std::snprintf(line, sizeof(line),
                "queues: admission high-water %zu | ingress %zu | commit "
                "backlog %zu | pressure raised %llu\n",
                admission_depth_high_water, ingress_high_water,
                commit_backlog_high_water, u(pressure_raised));
  out << line;
  const auto row = [&](const char* name, const workload::Summary& s) {
    std::snprintf(line, sizeof(line),
                  "  %-16s p50 %8.2f  p99 %8.2f  p99.9 %8.2f  max %8.2f\n",
                  name, s.p50, s.p99, s.p999, s.max);
    out << line;
  };
  out << "latency breakdown (ms, committed txs):\n";
  row("admission wait", admission_wait_ms);
  row("endorse", endorse_ms);
  row("order wait", order_wait_ms);
  row("commit", commit_ms);
  row("total", total_ms);
  if (sessions_enabled) {
    std::snprintf(line, sizeof(line),
                  "sessions: opened %llu | active %zu (grace %zu) | evicted "
                  "%llu | reconnected %llu | purged %llu | table %zu\n",
                  u(session_stats.opened), sessions_active, sessions_grace,
                  u(session_stats.evicted), u(session_stats.reconnected),
                  u(session_stats.purged), session_table);
    out << line;
    std::snprintf(
        line, sizeof(line),
        "session rejects: %llu (bad cert %llu, capacity %llu, seq %llu, "
        "unknown %llu)\n",
        u(rejected_session), u(session_stats.rejected_bad_cert),
        u(session_stats.rejected_capacity),
        u(session_stats.seq_duplicate + session_stats.seq_out_of_order +
          session_stats.seq_overflow),
        u(session_stats.unknown_session));
    out << line;
    for (std::size_t c = 0; c < class_stats.size(); ++c) {
      const ClassStats& cls = class_stats[c];
      std::snprintf(line, sizeof(line),
                    "  class %zu: offered %llu | rejected %llu | shed %llu | "
                    "timed out %llu | committed %llu\n",
                    c, u(cls.offered), u(cls.rejected), u(cls.shed),
                    u(cls.timed_out), u(cls.committed));
      out << line;
    }
  }
  std::snprintf(line, sizeof(line), "drained: %s | flags match: %s%s%s\n",
                drained ? "yes" : "NO", flags_match ? "yes" : "NO",
                mismatch.empty() ? "" : " | ", mismatch.c_str());
  out << line;
  return out.str();
}

ServeReport run_serve(const ServeOptions& options, obs::Registry* registry,
                      obs::Tracer* tracer, obs::Telemetry* telemetry) {
  ServeRun run(options, registry, tracer);
  return run.run(telemetry);
}

}  // namespace bm::serve

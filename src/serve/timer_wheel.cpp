#include "serve/timer_wheel.hpp"

#include <bit>
#include <cstring>

namespace bm::serve {

TimerWheel::TimerWheel(sim::Time granularity)
    : granularity_(granularity > 0 ? granularity : 1) {
  std::memset(heads_, 0xFF, sizeof(heads_));  // kNil == -1 in every slot
  std::memset(l0_bitmap_, 0, sizeof(l0_bitmap_));
  std::memset(l_bitmap_, 0, sizeof(l_bitmap_));
}

std::uint32_t TimerWheel::lowest_bit(std::uint64_t bits) {
  return static_cast<std::uint32_t>(std::countr_zero(bits));
}

std::int32_t TimerWheel::bucket_for(std::uint64_t tick) const {
  const std::uint64_t delta = tick - current_tick_;
  if (delta < kL0Slots)
    return static_cast<std::int32_t>(tick & (kL0Slots - 1));
  if (delta < (1ull << (kL0Bits + kLBits)))
    return static_cast<std::int32_t>(kL0Slots + ((tick >> kL0Bits) & (kLSlots - 1)));
  if (delta < (1ull << (kL0Bits + 2 * kLBits)))
    return static_cast<std::int32_t>(kL0Slots + kLSlots +
                                     ((tick >> (kL0Bits + kLBits)) & (kLSlots - 1)));
  return static_cast<std::int32_t>(kL0Slots + 2 * kLSlots +
                                   ((tick >> (kL0Bits + 2 * kLBits)) & (kLSlots - 1)));
}

void TimerWheel::mark(std::int32_t bucket, bool occupied) {
  const std::uint32_t b = static_cast<std::uint32_t>(bucket);
  std::uint64_t* word;
  std::uint32_t bit;
  if (b < kL0Slots) {
    word = &l0_bitmap_[b >> 6];
    bit = b & 63;
  } else {
    const std::uint32_t level = (b - kL0Slots) >> kLBits;
    word = &l_bitmap_[level];
    bit = (b - kL0Slots) & (kLSlots - 1);
  }
  if (occupied)
    *word |= 1ull << bit;
  else
    *word &= ~(1ull << bit);
}

void TimerWheel::link(Key key, std::uint64_t tick) {
  Entry& e = entries_[key];
  const std::int32_t bucket = bucket_for(tick);
  e.tick = tick;
  e.bucket = bucket;
  e.prev = kNil;
  e.next = heads_[bucket];
  if (e.next != kNil) entries_[static_cast<std::size_t>(e.next)].prev =
      static_cast<std::int32_t>(key);
  heads_[bucket] = static_cast<std::int32_t>(key);
  mark(bucket, true);
}

void TimerWheel::unlink(Key key) {
  Entry& e = entries_[key];
  if (e.prev != kNil)
    entries_[static_cast<std::size_t>(e.prev)].next = e.next;
  else
    heads_[e.bucket] = e.next;
  if (e.next != kNil)
    entries_[static_cast<std::size_t>(e.next)].prev = e.prev;
  if (heads_[e.bucket] == kNil) mark(e.bucket, false);
  e.next = e.prev = kNil;
  e.bucket = kNil;
}

void TimerWheel::arm(Key key, sim::Time deadline) {
  if (key >= entries_.size()) entries_.resize(key + 1);
  Entry& e = entries_[key];
  if (e.bucket != kNil)
    unlink(key);
  else
    ++armed_count_;
  link(key, deadline_tick(deadline));
}

void TimerWheel::disarm(Key key) {
  if (key >= entries_.size()) return;
  if (entries_[key].bucket == kNil) return;
  unlink(key);
  --armed_count_;
}

bool TimerWheel::armed(Key key) const {
  return key < entries_.size() && entries_[key].bucket != kNil;
}

sim::Time TimerWheel::deadline(Key key) const {
  if (!armed(key)) return kNever;
  return static_cast<sim::Time>(entries_[key].tick) * granularity_;
}

void TimerWheel::cascade(std::uint64_t window_start) {
  // Top-down so level-2 entries can land in level 1 and then level 0 within
  // this one crossing. A level-k slot is cascaded when window_start is
  // aligned to that level's span.
  for (int level = 3; level >= 1; --level) {
    const std::uint32_t shift =
        kL0Bits + static_cast<std::uint32_t>(level - 1) * kLBits;
    if (level > 1 && (window_start & ((1ull << shift) - 1)) != 0) continue;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((window_start >> shift) & (kLSlots - 1));
    const std::uint32_t bucket =
        kL0Slots + static_cast<std::uint32_t>(level - 1) * kLSlots + slot;
    std::int32_t head = heads_[bucket];
    if (head == kNil) continue;
    heads_[bucket] = kNil;
    mark(static_cast<std::int32_t>(bucket), false);
    while (head != kNil) {
      const Key key = static_cast<Key>(head);
      Entry& e = entries_[static_cast<std::size_t>(head)];
      head = e.next;
      e.next = e.prev = kNil;
      e.bucket = kNil;
      ++work_done_;
      link(key, e.tick);
    }
  }
}

sim::Time TimerWheel::next_due() const {
  if (armed_count_ == 0) return kNever;
  // Exact within the current 256-tick window...
  const std::uint64_t window_end = current_tick_ | (kL0Slots - 1);
  for (std::uint64_t t = current_tick_ + 1; t <= window_end;) {
    const std::uint32_t slot = static_cast<std::uint32_t>(t & (kL0Slots - 1));
    const std::uint64_t bits = l0_bitmap_[slot >> 6] >> (slot & 63);
    if (bits == 0) {
      t += 64 - (slot & 63);
      continue;
    }
    t += lowest_bit(bits);
    if (t > window_end) break;
    return static_cast<sim::Time>(t) * granularity_;
  }
  // ...conservative beyond it: wake at the boundary, cascade, re-evaluate.
  return static_cast<sim::Time>(window_end + 1) * granularity_;
}

}  // namespace bm::serve

#include "serve/config.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace bm::serve {

namespace {

using obs::json::Value;

bool read_number(const Value& parent, std::string_view key, double* out,
                 std::string* error) {
  const Value* v = parent.find(key);
  if (v == nullptr) return true;  // optional: keep default
  if (!v->is_number()) {
    if (error != nullptr)
      *error = "serve config: \"" + std::string(key) + "\" must be a number";
    return false;
  }
  *out = v->number;
  return true;
}

bool read_size(const Value& parent, std::string_view key, std::size_t* out,
               std::string* error) {
  double value = static_cast<double>(*out);
  if (!read_number(parent, key, &value, error)) return false;
  if (value < 0) value = 0;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool read_int(const Value& parent, std::string_view key, int* out,
              std::string* error) {
  double value = static_cast<double>(*out);
  if (!read_number(parent, key, &value, error)) return false;
  *out = static_cast<int>(value);
  return true;
}

bool read_time_ms(const Value& parent, std::string_view key, sim::Time* out,
                  std::string* error) {
  double ms = static_cast<double>(*out) / static_cast<double>(sim::kMillisecond);
  if (!read_number(parent, key, &ms, error)) return false;
  *out = static_cast<sim::Time>(ms * static_cast<double>(sim::kMillisecond));
  return true;
}

bool read_time_us(const Value& parent, std::string_view key, sim::Time* out,
                  std::string* error) {
  double us = static_cast<double>(*out) / static_cast<double>(sim::kMicrosecond);
  if (!read_number(parent, key, &us, error)) return false;
  *out = static_cast<sim::Time>(us * static_cast<double>(sim::kMicrosecond));
  return true;
}

bool parse_traffic(const Value* node, TrafficConfig* config,
                   std::string* error) {
  if (node == nullptr) return true;
  if (!node->is_object()) {
    if (error != nullptr) *error = "serve config: \"traffic\" must be an object";
    return false;
  }
  if (const Value* process = node->find("process")) {
    if (!process->is_string()) {
      if (error != nullptr)
        *error = "serve config: \"traffic.process\" must be a string";
      return false;
    }
    if (process->string == "poisson") {
      config->process = ArrivalProcess::kPoisson;
    } else if (process->string == "mmpp") {
      config->process = ArrivalProcess::kMmpp;
    } else if (process->string == "diurnal") {
      config->process = ArrivalProcess::kDiurnal;
    } else {
      if (error != nullptr)
        *error = "serve config: unknown arrival process \"" +
                 process->string + "\" (poisson | mmpp | diurnal)";
      return false;
    }
  }
  return read_number(*node, "rate_tps", &config->rate_tps, error) &&
         read_number(*node, "burst_rate_tps", &config->burst_rate_tps,
                     error) &&
         read_number(*node, "p_enter_burst", &config->p_enter_burst, error) &&
         read_number(*node, "p_exit_burst", &config->p_exit_burst, error) &&
         read_number(*node, "peak_rate_tps", &config->peak_rate_tps, error) &&
         read_time_ms(*node, "period_ms", &config->period, error);
}

bool parse_admission(const Value* node, AdmissionConfig* config,
                     std::string* error) {
  if (node == nullptr) return true;
  if (!node->is_object()) {
    if (error != nullptr)
      *error = "serve config: \"admission\" must be an object";
    return false;
  }
  return read_size(*node, "queue_capacity", &config->queue_capacity, error) &&
         read_number(*node, "token_rate_tps", &config->token_rate_tps,
                     error) &&
         read_number(*node, "bucket_capacity", &config->bucket_capacity,
                     error) &&
         read_int(*node, "classes", &config->classes, error) &&
         read_number(*node, "pressure_refill_factor",
                     &config->pressure_refill_factor, error);
}

bool parse_endorse(const Value* node, EndorsementService::Config* config,
                   std::string* error) {
  if (node == nullptr) return true;
  if (!node->is_object()) {
    if (error != nullptr) *error = "serve config: \"endorse\" must be an object";
    return false;
  }
  int sign_threads = static_cast<int>(config->sign_threads);
  if (!read_int(*node, "workers", &config->workers, error) ||
      !read_time_us(*node, "service_base_us", &config->service_base, error) ||
      !read_time_us(*node, "per_endorsement_us", &config->per_endorsement,
                    error) ||
      !read_time_ms(*node, "deadline_ms", &config->deadline, error) ||
      !read_int(*node, "sign_threads", &sign_threads, error))
    return false;
  config->sign_threads = sign_threads < 0 ? 0u
                                          : static_cast<unsigned>(sign_threads);
  return true;
}

bool parse_ingress(const Value* node, IngressConfig* config,
                   std::string* error) {
  if (node == nullptr) return true;
  if (!node->is_object()) {
    if (error != nullptr) *error = "serve config: \"ingress\" must be an object";
    return false;
  }
  return read_size(*node, "max_batch", &config->max_batch, error) &&
         read_time_ms(*node, "batch_timeout_ms", &config->batch_timeout,
                      error) &&
         read_size(*node, "high_watermark", &config->high_watermark, error) &&
         read_size(*node, "low_watermark", &config->low_watermark, error);
}

bool parse_network(const Value* node, workload::NetworkOptions* config,
                   std::string* error) {
  if (node == nullptr) return true;
  if (!node->is_object()) {
    if (error != nullptr) *error = "serve config: \"network\" must be an object";
    return false;
  }
  if (const Value* chaincode = node->find("chaincode")) {
    if (!chaincode->is_string()) {
      if (error != nullptr)
        *error = "serve config: \"network.chaincode\" must be a string";
      return false;
    }
    if (chaincode->string == "smallbank") {
      config->chaincode = workload::ChaincodeKind::kSmallbank;
    } else if (chaincode->string == "drm") {
      config->chaincode = workload::ChaincodeKind::kDrm;
    } else {
      if (error != nullptr)
        *error = "serve config: unknown chaincode \"" + chaincode->string +
                 "\" (smallbank | drm)";
      return false;
    }
  }
  if (const Value* policy = node->find("policy");
      policy != nullptr && policy->is_string())
    config->policy_text = policy->string;
  return read_int(*node, "orgs", &config->orgs, error) &&
         read_number(*node, "bad_signature_rate", &config->bad_signature_rate,
                     error) &&
         read_number(*node, "missing_endorsement_rate",
                     &config->missing_endorsement_rate, error) &&
         read_number(*node, "conflicting_read_rate",
                     &config->conflicting_read_rate, error);
}

bool parse_durability(const Value* node, fabric::DurabilityConfig* config,
                      std::string* error) {
  if (node == nullptr) return true;
  if (!node->is_object()) {
    if (error != nullptr)
      *error = "serve config: \"durability\" must be an object";
    return false;
  }
  if (const Value* path = node->find("ledger_path")) {
    if (!path->is_string()) {
      if (error != nullptr)
        *error = "serve config: \"durability.ledger_path\" must be a string";
      return false;
    }
    config->ledger_path = path->string;
  }
  double interval = static_cast<double>(config->snapshot_interval);
  double fsync_each = config->fsync_each_block ? 1.0 : 0.0;
  if (!read_number(*node, "snapshot_interval_blocks", &interval, error) ||
      !read_size(*node, "keep_snapshots", &config->keep_snapshots, error) ||
      !read_number(*node, "fsync_each_block", &fsync_each, error))
    return false;
  config->snapshot_interval =
      interval < 0 ? 0 : static_cast<std::uint64_t>(interval);
  config->fsync_each_block = fsync_each != 0.0;
  return true;
}

}  // namespace

std::optional<ServeOptions> parse_serve_scenario(std::string_view text,
                                                 std::string* error) {
  std::string parse_error;
  const auto root = obs::json::parse(text, &parse_error);
  if (!root) {
    if (error != nullptr) *error = "serve config: " + parse_error;
    return std::nullopt;
  }
  if (!root->is_object()) {
    if (error != nullptr) *error = "serve config: root must be an object";
    return std::nullopt;
  }

  ServeOptions options;
  if (const Value* name = root->find("name");
      name != nullptr && name->is_string())
    options.name = name->string;

  // One top-level seed drives both deterministic streams; the arrival
  // process gets a fixed odd-constant mix so its schedule is independent of
  // the harness's fault/op draws (same decorrelation idiom as net/faults).
  double seed = static_cast<double>(options.network.seed);
  if (!read_number(*root, "seed", &seed, error)) return std::nullopt;
  options.network.seed = static_cast<std::uint64_t>(seed);
  options.traffic.seed =
      static_cast<std::uint64_t>(seed) ^ 0x9E3779B97F4A7C15ull;

  if (!read_time_ms(*root, "duration_ms", &options.duration, error) ||
      !read_time_ms(*root, "drain_limit_ms", &options.drain_limit, error) ||
      !read_int(*root, "validate_vcpus", &options.validate_vcpus, error) ||
      !read_number(*root, "high_priority_share", &options.high_priority_share,
                   error))
    return std::nullopt;

  if (!parse_traffic(root->find("traffic"), &options.traffic, error) ||
      !parse_admission(root->find("admission"), &options.admission, error) ||
      !parse_endorse(root->find("endorse"), &options.endorse, error) ||
      !parse_ingress(root->find("ingress"), &options.ingress, error) ||
      !parse_network(root->find("network"), &options.network, error) ||
      !parse_durability(root->find("durability"), &options.network.durability,
                        error))
    return std::nullopt;
  return options;
}

std::optional<ServeOptions> load_serve_scenario(const std::string& path,
                                                std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "serve config: cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_serve_scenario(text.str(), error);
}

}  // namespace bm::serve

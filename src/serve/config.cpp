#include "serve/config.hpp"

#include "common/config.hpp"

namespace bm::serve {

namespace {

void parse_traffic(const config::Section& node, TrafficConfig* config) {
  node.read_enum<ArrivalProcess>("process", &config->process,
                                 {{"poisson", ArrivalProcess::kPoisson},
                                  {"mmpp", ArrivalProcess::kMmpp},
                                  {"diurnal", ArrivalProcess::kDiurnal}});
  node.read_number("rate_tps", &config->rate_tps, config::positive());
  node.read_number("burst_rate_tps", &config->burst_rate_tps,
                   config::positive());
  node.read_number("p_enter_burst", &config->p_enter_burst,
                   config::unit_interval());
  node.read_number("p_exit_burst", &config->p_exit_burst,
                   config::unit_interval());
  node.read_number("peak_rate_tps", &config->peak_rate_tps,
                   config::positive());
  node.read_time_ms("period_ms", &config->period, config::positive());
}

void parse_sessions(const config::Section& node, SessionConfig* config) {
  node.read_bool("enabled", &config->enabled);
  node.read_size("population", &config->population, config::positive());
  node.read_size("max_sessions", &config->max_sessions,
                 config::non_negative());
  node.read_time_ms("idle_timeout_ms", &config->idle_timeout,
                    config::positive());
  node.read_time_ms("grace_ms", &config->grace, config::non_negative());
  node.read_time_ms("wheel_granularity_ms", &config->wheel_granularity,
                    config::positive());
  node.read_int("rate_classes", &config->rate_classes, config::at_least(1));
  node.read_number("zipf_s", &config->zipf_s, config::non_negative());
  node.read_number("bad_cert_share", &config->bad_cert_share,
                   config::unit_interval());
  node.read_number("duplicate_rate", &config->duplicate_rate,
                   config::unit_interval());
  node.read_number("out_of_order_rate", &config->out_of_order_rate,
                   config::unit_interval());
  node.read_bool("preconnect", &config->preconnect);
  node.read_size("cert_pool", &config->cert_pool, config::positive());
  node.read_u64("seq_limit", &config->seq_limit, config::positive());
}

void parse_admission(const config::Section& node, AdmissionConfig* config) {
  node.read_size("queue_capacity", &config->queue_capacity,
                 config::non_negative());
  node.read_number("token_rate_tps", &config->token_rate_tps,
                   config::non_negative());
  node.read_number("bucket_capacity", &config->bucket_capacity,
                   config::non_negative());
  node.read_int("classes", &config->classes, config::at_least(1));
  node.read_number("pressure_refill_factor", &config->pressure_refill_factor,
                   config::unit_interval());
}

void parse_endorse(const config::Section& node,
                   EndorsementService::Config* config) {
  node.read_int("workers", &config->workers, config::at_least(1));
  node.read_time_us("service_base_us", &config->service_base,
                    config::non_negative());
  node.read_time_us("per_endorsement_us", &config->per_endorsement,
                    config::non_negative());
  node.read_time_ms("deadline_ms", &config->deadline, config::non_negative());
  int sign_threads = static_cast<int>(config->sign_threads);
  node.read_int("sign_threads", &sign_threads, config::non_negative());
  config->sign_threads =
      sign_threads < 0 ? 0u : static_cast<unsigned>(sign_threads);
}

void parse_ingress(const config::Section& node, IngressConfig* config) {
  node.read_size("max_batch", &config->max_batch, config::at_least(1));
  node.read_time_ms("batch_timeout_ms", &config->batch_timeout,
                    config::positive());
  node.read_size("high_watermark", &config->high_watermark,
                 config::non_negative());
  node.read_size("low_watermark", &config->low_watermark,
                 config::non_negative());
}

void parse_network(const config::Section& node,
                   workload::NetworkOptions* config) {
  node.read_enum<workload::ChaincodeKind>(
      "chaincode", &config->chaincode,
      {{"smallbank", workload::ChaincodeKind::kSmallbank},
       {"drm", workload::ChaincodeKind::kDrm}});
  node.read_string("policy", &config->policy_text);
  node.read_int("orgs", &config->orgs, config::at_least(1));
  node.read_number("bad_signature_rate", &config->bad_signature_rate,
                   config::unit_interval());
  node.read_number("missing_endorsement_rate",
                   &config->missing_endorsement_rate, config::unit_interval());
  node.read_number("conflicting_read_rate", &config->conflicting_read_rate,
                   config::unit_interval());
  node.read_number("zipf_s", &config->smallbank.zipf_s,
                   config::non_negative());
}

}  // namespace

namespace detail {

void parse_serve_durability(const config::Section& node,
                            fabric::DurabilityConfig* config) {
  node.read_string("ledger_path", &config->ledger_path);
  node.read_u64("snapshot_interval_blocks", &config->snapshot_interval,
                config::non_negative());
  node.read_size("keep_snapshots", &config->keep_snapshots,
                 config::non_negative());
  node.read_bool("fsync_each_block", &config->fsync_each_block);
}

void parse_serve_sessions(const config::Section& node, SessionConfig* config) {
  parse_sessions(node, config);
}

std::optional<ServeOptions> parse_serve_section(const config::Section& root) {
  ServeOptions options;
  root.read_string("name", &options.name);

  // One top-level seed drives both deterministic streams; the arrival
  // process gets a fixed odd-constant mix so its schedule is independent of
  // the harness's fault/op draws (same decorrelation idiom as net/faults).
  std::uint64_t seed = options.network.seed;
  root.read_u64("seed", &seed, config::non_negative());
  options.network.seed = seed;
  options.traffic.seed = seed ^ 0x9E3779B97F4A7C15ull;

  root.read_time_ms("duration_ms", &options.duration, config::positive());
  root.read_time_ms("drain_limit_ms", &options.drain_limit,
                    config::non_negative());
  root.read_int("validate_vcpus", &options.validate_vcpus,
                config::at_least(1));
  root.read_number("high_priority_share", &options.high_priority_share,
                   config::unit_interval());

  parse_traffic(root.object("traffic"), &options.traffic);
  parse_sessions(root.object("sessions"), &options.sessions);
  parse_admission(root.object("admission"), &options.admission);
  parse_endorse(root.object("endorse"), &options.endorse);
  parse_ingress(root.object("ingress"), &options.ingress);
  parse_network(root.object("network"), &options.network);
  parse_serve_durability(root.object("durability"),
                         &options.network.durability);
  // The session layer admits per-class; keep the admission queue's class
  // count in sync so every configured rate class has a cap.
  if (options.sessions.enabled &&
      options.admission.classes < options.sessions.rate_classes)
    options.admission.classes = options.sessions.rate_classes;
  return options;
}

}  // namespace detail

std::optional<ServeOptions> parse_serve_scenario(std::string_view text,
                                                 std::string* error) {
  config::Root root = config::Root::parse(text, "serve");
  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  auto options = detail::parse_serve_section(root.section());
  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  return options;
}

std::optional<ServeOptions> load_serve_scenario(const std::string& path,
                                                std::string* error) {
  config::Root root = config::Root::load(path, "serve");
  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  auto options = detail::parse_serve_section(root.section());
  if (!root.ok()) {
    if (error != nullptr) *error = root.error();
    return std::nullopt;
  }
  return options;
}

}  // namespace bm::serve

// Bounded admission control in front of the endorsement stage
// (docs/SERVING.md).
//
// The overload discipline: a request is either admitted into a bounded
// queue or refused *immediately* with kOverloaded and a retry-after hint —
// nothing queues unboundedly, so offered load beyond capacity turns into
// explicit shedding instead of congestion collapse. Three mechanisms
// compose:
//
//   - a token bucket caps the sustained admit rate (bucket depth = burst
//     allowance), refilled on the simulated clock;
//   - per-class priorities: class 0 (highest) may fill the whole queue,
//     class c only the first capacity>>c slots, so low-priority traffic
//     sheds first as the queue deepens; pop() drains strictly by class;
//   - downstream pressure: when the orderer-ingress / commit backlog
//     crosses its high watermark, the token refill slows by
//     pressure_refill_factor until the low watermark releases it — the
//     queue-depth feedback loop into the rate limiter.
//
// Deterministic: decisions depend only on (config, call sequence,
// simulated time) — no randomness, no wall clock.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace bm::serve {

enum class AdmitResult : std::uint8_t {
  kAdmitted = 0,
  /// Shed: queue (or class share, or token bucket) exhausted. The request
  /// never enters the pipeline; retry_after tells the client when capacity
  /// is expected back (the HTTP 503 Retry-After of this front end).
  kOverloaded,
};

struct AdmissionDecision {
  AdmitResult result = AdmitResult::kAdmitted;
  sim::Time retry_after = 0;  ///< meaningful when kOverloaded

  bool admitted() const { return result == AdmitResult::kAdmitted; }
};

struct AdmissionConfig {
  std::size_t queue_capacity = 512;  ///< total slots, all classes
  /// Token bucket: sustained admit rate in tx/s; 0 disables rate limiting.
  double token_rate_tps = 0.0;
  double bucket_capacity = 128.0;  ///< burst allowance, in tokens
  int classes = 2;                 ///< priority classes; 0 = highest
  /// Refill-rate multiplier while downstream pressure is on, in (0,1].
  double pressure_refill_factor = 0.25;
};

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;    ///< queue (or class share) exhausted
  std::uint64_t shed_rate_limited = 0;  ///< token bucket empty
  std::size_t depth_high_water = 0;
  std::uint64_t pressure_raised = 0;  ///< off->on transitions

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_rate_limited;
  }
};

/// Session handle threaded through the pipeline; the full definition lives
/// in serve/session.hpp (same alias — (generation << 32) | slot, 0 = none).
using SessionId = std::uint64_t;

/// One admitted request waiting for an endorsement worker.
struct AdmittedRequest {
  std::uint64_t id = 0;
  int klass = 0;
  sim::Time arrived = 0;
  SessionId session = 0;  ///< owning session; 0 for anonymous arrivals
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  /// Admit-or-shed decision for a request arriving at `now`. `session`
  /// rides along into the AdmittedRequest so downstream stages can account
  /// per session / rate class.
  AdmissionDecision offer(std::uint64_t id, int klass, sim::Time now,
                          SessionId session = 0);

  /// Highest-priority waiting request, or nullopt when empty.
  std::optional<AdmittedRequest> pop();

  std::size_t depth() const;

  /// Downstream watermark feedback (idempotent per state).
  void set_pressure(bool on, sim::Time now);
  bool pressure() const { return pressure_; }

  const AdmissionStats& stats() const { return stats_; }
  const AdmissionConfig& config() const { return config_; }

  /// Snapshot the counters under "<prefix>_..." (idempotent).
  void publish_metrics(obs::Registry& registry,
                       const std::string& prefix) const;

  /// Bind live counters (same "<prefix>_..." names publish_metrics sets, so
  /// the end-of-run snapshot is idempotent with the live increments) plus a
  /// "<prefix>_depth" gauge, so the continuous-telemetry sampler sees the
  /// admission stage move *during* the run instead of one jump at the end.
  void attach_observability(obs::Registry& registry, const std::string& prefix);

 private:
  void refill(sim::Time now);
  double refill_rate() const;
  std::size_t class_cap(int klass) const;

  AdmissionConfig config_;
  std::vector<std::deque<AdmittedRequest>> queues_;  ///< one per class
  double tokens_ = 0;
  sim::Time last_refill_ = 0;
  bool pressure_ = false;
  AdmissionStats stats_;

  // Live telemetry bindings; null until attach_observability().
  obs::Counter* live_offered_ = nullptr;
  obs::Counter* live_admitted_ = nullptr;
  obs::Counter* live_shed_queue_full_ = nullptr;
  obs::Counter* live_shed_rate_limited_ = nullptr;
  obs::Counter* live_shed_total_ = nullptr;
  obs::Counter* live_pressure_raised_ = nullptr;
  obs::Gauge* live_depth_ = nullptr;
};

}  // namespace bm::serve

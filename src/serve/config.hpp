// JSON scenario loading for serve runs (configs/serve_*.json).
//
// Mirrors the net/faults scenario loader: every key is optional and falls
// back to the ServeOptions default, unknown keys are ignored, and one
// top-level seed derives the decorrelated per-component seeds (harness rng
// vs arrival process) so a scenario file plus one integer fully determines
// the run.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/pipeline.hpp"

namespace bm::config {
class Section;
}

namespace bm::serve {

/// Parse a scenario from JSON text. Returns nullopt (and sets *error) on
/// malformed input.
std::optional<ServeOptions> parse_serve_scenario(std::string_view text,
                                                 std::string* error = nullptr);

/// Load a scenario file from disk.
std::optional<ServeOptions> load_serve_scenario(const std::string& path,
                                                std::string* error = nullptr);

namespace detail {
/// Section-level parsers shared with the composed --scenario loader
/// (serve/scenario.cpp): the same schema whether the keys sit at the top of
/// a serve config file or under a scenario file's "serve" section.
std::optional<ServeOptions> parse_serve_section(const config::Section& root);
void parse_serve_durability(const config::Section& node,
                            fabric::DurabilityConfig* config);
void parse_serve_sessions(const config::Section& node, SessionConfig* config);
}  // namespace detail

}  // namespace bm::serve

// JSON scenario loading for serve runs (configs/serve_*.json).
//
// Mirrors the net/faults scenario loader: every key is optional and falls
// back to the ServeOptions default, unknown keys are ignored, and one
// top-level seed derives the decorrelated per-component seeds (harness rng
// vs arrival process) so a scenario file plus one integer fully determines
// the run.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "serve/pipeline.hpp"

namespace bm::serve {

/// Parse a scenario from JSON text. Returns nullopt (and sets *error) on
/// malformed input.
std::optional<ServeOptions> parse_serve_scenario(std::string_view text,
                                                 std::string* error = nullptr);

/// Load a scenario file from disk.
std::optional<ServeOptions> load_serve_scenario(const std::string& path,
                                                std::string* error = nullptr);

}  // namespace bm::serve

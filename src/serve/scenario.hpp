// One composed scenario file per experiment: `bmac_sim serve --scenario`.
//
// A scenario file bundles everything a serve run needs into a single JSON
// document with one section per subsystem:
//
//   {
//     "name": "steady_sessions",
//     "serve":      { ... },   // schema of configs/serve_*.json
//     "sessions":   { ... },   // overrides serve.sessions when present
//     "durability": { ... },   // overrides serve.durability when present
//     "slo":        { ... },   // schema of configs/slo_*.json
//     "faults":     { ... },   // schema of configs/faults_*.json
//     "cluster":    { ... }    // N-org/M-peer topology (docs/CLUSTER.md)
//   }
//
// Every section reuses the exact parser of its standalone config file
// (serve/config.cpp, obs/slo.cpp, net/faults.cpp via their detail:: hooks),
// so a section body can be cut-and-pasted between a scenario file and the
// matching configs/*.json without edits, and diagnostics keep naming the
// file plus full JSON path (`scenario.slo.rules[2].kind: ...`).
//
// The top-level "sessions" / "durability" sections exist so one scenario
// file can layer a session population or a durable ledger onto a shared
// base "serve" section; they win over the serve-nested equivalents.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cluster/config.hpp"
#include "net/faults.hpp"
#include "obs/slo.hpp"
#include "serve/config.hpp"

namespace bm::serve {

struct Scenario {
  std::string name;
  ServeOptions serve;
  /// SLO rules to evaluate during the run (inline equivalent of
  /// --slo-config). nullopt when the scenario has no "slo" section.
  std::optional<obs::SloConfig> slo;
  /// Network fault schedule. nullopt when the scenario has no "faults"
  /// section; serve runs currently ignore it (the serve harness models a
  /// clean network) but `bmac_sim chaos --scenario` consumes it.
  std::optional<net::FaultScenario> faults;
  /// Cluster topology (orgs / peers / orderers / gossip / catch-up knobs).
  /// nullopt when the scenario has no "cluster" section; consumed by
  /// `bmac_sim cluster --scenario` and tests/bench building a
  /// cluster::ClusterDeployment.
  std::optional<cluster::ClusterConfig> cluster;
};

/// Parse a composed scenario from JSON text. Returns nullopt (and sets
/// *error) on malformed input.
std::optional<Scenario> parse_scenario(std::string_view text,
                                       std::string* error = nullptr);

/// Load a composed scenario file from disk.
std::optional<Scenario> load_scenario(const std::string& path,
                                      std::string* error = nullptr);

}  // namespace bm::serve

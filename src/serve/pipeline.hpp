// The open-loop serving pipeline: traffic -> admission -> endorsement ->
// orderer ingress -> validation/commit, end to end on one simulated clock
// (docs/SERVING.md).
//
// run_serve() drives the existing FabricNetworkHarness endorsers and
// orderer through the step-wise submit/collect API as a request pipeline:
//
//   TrafficGenerator        open-loop arrivals (Poisson / MMPP / diurnal)
//     -> AdmissionQueue     bounded, token-bucket, per-class; sheds with
//                           kOverloaded + retry-after instead of queueing
//     -> EndorsementService worker lanes, deadlines, cancellation
//     -> orderer ingress    batch cutting (max_batch / batch_timeout);
//                           commit-backlog watermarks feed back into the
//                           admission rate limiter
//     -> validation/commit  modeled service time (fabric::SwTimingModel),
//                           real reference validation + state commit
//
// Every committed block goes through the harness's reference backend, so
// per-transaction flags and the commit-hash chain are the same ones the
// closed-loop driver would produce — overload changes *which* transactions
// get in, never what a committed block means. The whole run is
// deterministic: same ServeOptions => identical admission/shed counts,
// identical blocks, identical report.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/endorse.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"
#include "workload/metrics.hpp"
#include "workload/network_harness.hpp"

namespace bm::obs {
class Telemetry;
}

namespace bm::serve {

struct IngressConfig {
  /// Block cut size (Fabric BatchSize.MaxMessageCount). run_serve() sizes
  /// the harness orderer to exactly this.
  std::size_t max_batch = 100;
  /// Cut a partial batch after this long (Fabric BatchTimeout).
  sim::Time batch_timeout = 5 * sim::kMillisecond;
  /// Commit-backlog watermarks, in blocks (the in-service block included):
  /// >= high raises admission pressure, <= low releases it.
  std::size_t high_watermark = 6;
  std::size_t low_watermark = 2;
};

struct ServeOptions {
  std::string name = "serve";
  /// Workload shape (orgs, chaincode, policy, fault knobs, seed). The
  /// orderer batch size is overridden by ingress.max_batch.
  workload::NetworkOptions network;
  TrafficConfig traffic;
  AdmissionConfig admission;
  EndorsementService::Config endorse;
  IngressConfig ingress;
  /// Session/identity layer (serve/session.hpp). Disabled by default:
  /// arrivals are anonymous and the run is bit-identical to the pre-session
  /// pipeline. When enabled, every arrival belongs to an authenticated
  /// client session whose rate class feeds the admission queue, and
  /// admission.classes is raised to at least sessions.rate_classes.
  SessionConfig sessions;
  /// vCPUs of the modeled commit stage (fabric::SwTimingModel input).
  int validate_vcpus = 8;
  /// Fraction of arrivals in priority class 0 (rest are class 1; with one
  /// configured class everything is class 0).
  double high_priority_share = 0.1;
  /// Arrivals are generated for [0, duration]; the pipeline then drains.
  sim::Time duration = 2 * sim::kSecond;
  /// Hard stop for the drain: the run fails (drained = false) if admitted
  /// work is still unresolved this long after the last arrival.
  sim::Time drain_limit = 10 * sim::kSecond;
  /// Keep the committed blocks in the report (tests; memory-heavy).
  bool keep_blocks = false;
  /// Replay the committed blocks through an independent software backend
  /// and compare flags + commit hashes against the harness reference
  /// (implies keep_blocks).
  bool check_equivalence = false;
};

struct ServeReport {
  /// Per-rate-class request accounting (sessions enabled only). offered
  /// partitions into rejected (session layer) + shed (admission) +
  /// timed_out + committed + still-pending.
  struct ClassStats {
    std::uint64_t offered = 0;
    std::uint64_t rejected = 0;  ///< refused by the session layer
    std::uint64_t shed = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t committed = 0;
  };

  // Request accounting. offered = every generated arrival;
  // admitted + shed_* (+ rejected_session) partitions offered;
  // timed_out + committed_txs partitions admitted (after the drain).
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t valid_txs = 0;
  std::uint64_t blocks_committed = 0;

  double offered_tps = 0;  ///< offered / duration
  double goodput_tps = 0;  ///< valid committed txs / time of last commit

  std::size_t admission_depth_high_water = 0;
  std::size_t ingress_high_water = 0;        ///< drafts awaiting a cut
  std::size_t commit_backlog_high_water = 0; ///< blocks queued + in service
  std::uint64_t pressure_raised = 0;

  sim::Time finished_at = 0;
  bool drained = false;     ///< all admitted work resolved in time
  bool flags_match = true;  ///< equivalence check (when requested)
  std::string mismatch;     ///< first divergence, empty when none

  // Session layer (meaningful when sessions_enabled).
  bool sessions_enabled = false;
  std::uint64_t rejected_session = 0;  ///< arrivals refused by the session layer
  SessionStats session_stats;
  std::size_t sessions_active = 0;   ///< at end of run
  std::size_t sessions_grace = 0;    ///< in the grace window at end of run
  std::size_t session_table = 0;     ///< slots ever allocated (memory driver)
  std::vector<ClassStats> class_stats;  ///< indexed by rate class

  // Per-stage latency breakdown (ms) over committed transactions:
  // admission wait (arrival -> endorse dispatch), endorse service,
  // order wait (endorsed -> block cut), commit (cut -> committed),
  // and the end-to-end total.
  workload::Summary admission_wait_ms;
  workload::Summary endorse_ms;
  workload::Summary order_wait_ms;
  workload::Summary commit_ms;
  workload::Summary total_ms;

  std::vector<fabric::Block> blocks;  ///< when ServeOptions::keep_blocks

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_rate_limited;
  }
  bool ok() const { return drained && flags_match; }

  /// Deterministic human-readable summary (one value per line).
  std::string to_text() const;
};

/// Run one open-loop serving scenario end to end. Observability sinks are
/// optional; when given, every stage publishes into them ("serve_*" metrics
/// plus a caliper_serve_* report with shed/timeout counts). A configured
/// obs::Telemetry (requires `registry`) additionally runs the continuous
/// time-series sampler, SLO monitor and flight recorder on the run's
/// simulated clock; the report itself is identical with or without it.
ServeReport run_serve(const ServeOptions& options,
                      obs::Registry* registry = nullptr,
                      obs::Tracer* tracer = nullptr,
                      obs::Telemetry* telemetry = nullptr);

}  // namespace bm::serve

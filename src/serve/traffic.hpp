// Open-loop arrival processes for the client-serving front end
// (docs/SERVING.md).
//
// The closed-loop driver (FabricNetworkHarness::next_block) measures
// capacity: it issues the next transaction only after the previous block
// committed, so the system is never offered more than it can absorb. Real
// clients do not wait — requests arrive on their own clock whether or not
// the peer keeps up, which is what exposes the throughput-vs-latency
// hockey stick and the overload behaviour the bottleneck studies (Wang &
// Chu) measure. Three processes cover the load shapes that matter:
//
//   - Poisson: memoryless steady load, the M in M/M/c — exponential
//     interarrivals at a fixed rate;
//   - MMPP: a two-phase Markov-modulated Poisson process — calm/burst
//     alternation with per-arrival phase switching, the classic model of
//     correlated client bursts (flash crowds, retry storms);
//   - diurnal: a non-homogeneous Poisson ramp (Lewis–Shedler thinning
//     against a raised-cosine rate curve) for slow load swings.
//
// Deterministic like net/faults: the schedule is a pure function of
// (config, seed) — two generators with the same config emit byte-identical
// arrival sequences, independent of what the pipeline does with them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulation.hpp"

namespace bm::serve {

enum class ArrivalProcess { kPoisson, kMmpp, kDiurnal };

struct TrafficConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;

  /// Poisson: the rate. MMPP: the calm-phase rate. Diurnal: the trough of
  /// the ramp. Transactions per second of simulated time.
  double rate_tps = 1000.0;

  // --- MMPP ----------------------------------------------------------------
  /// Burst-phase rate; 0 defaults to 4x rate_tps.
  double burst_rate_tps = 0.0;
  /// Per-arrival phase-switch probabilities. The embedded chain's
  /// stationary burst occupancy is p_enter / (p_enter + p_exit).
  double p_enter_burst = 0.05;
  double p_exit_burst = 0.25;

  // --- diurnal -------------------------------------------------------------
  /// Peak of the raised-cosine ramp; 0 defaults to 2x rate_tps.
  double peak_rate_tps = 0.0;
  /// Ramp period (one "day").
  sim::Time period = sim::kSecond;

  std::uint64_t seed = 1;
};

/// Generates one arrival schedule. Each generator owns its rng, so the
/// schedule never interleaves with other random draws.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& config);

  /// Absolute simulated time of the next arrival (monotone non-decreasing).
  sim::Time next_arrival();

  /// Drain arrivals up to and including `horizon` into a vector. Consumes
  /// the generator's state like repeated next_arrival() calls.
  std::vector<sim::Time> schedule(sim::Time horizon);

  bool in_burst() const { return burst_; }
  std::uint64_t arrivals() const { return arrivals_; }
  /// Arrivals emitted while the MMPP chain sat in the burst phase.
  std::uint64_t burst_arrivals() const { return burst_arrivals_; }

 private:
  /// One exponential interarrival gap at `rate_tps`, in simulated ns.
  sim::Time exponential(double rate_tps);
  /// Instantaneous diurnal rate at time t.
  double diurnal_rate(sim::Time t) const;

  TrafficConfig config_;
  Rng rng_;
  sim::Time now_ = 0;
  bool burst_ = false;
  std::uint64_t arrivals_ = 0;
  std::uint64_t burst_arrivals_ = 0;
};

/// Deterministic client-population mix for session-aware runs: maps each
/// arrival to a client index (optionally Zipf-skewed, so a hot minority of
/// sessions dominates traffic) and each client to a rate class. Owns its
/// own rng, decorrelated from the arrival schedule, so enabling sessions
/// never perturbs arrival times.
class SessionMix {
 public:
  SessionMix(std::size_t population, double zipf_s, int rate_classes,
             double high_priority_share, std::uint64_t seed);

  /// Client index of the next arrival, in [0, population).
  std::size_t next_client();

  /// Stable client -> rate class mapping: the first
  /// high_priority_share * population clients are class 0 (and, under Zipf
  /// skew, also the hottest); the rest round-robin classes 1..N-1.
  int rate_class_of(std::size_t client) const;

  std::size_t population() const { return population_; }

 private:
  std::size_t population_;
  int rate_classes_;
  std::size_t high_priority_clients_;
  Zipf zipf_;
  Rng rng_;
};

}  // namespace bm::serve

#include "serve/admission.hpp"

#include <algorithm>

namespace bm::serve {

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(config) {
  config_.classes = std::max(1, config_.classes);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.pressure_refill_factor =
      std::clamp(config_.pressure_refill_factor, 0.0, 1.0);
  if (config_.bucket_capacity < 1.0) config_.bucket_capacity = 1.0;
  queues_.resize(static_cast<std::size_t>(config_.classes));
  tokens_ = config_.bucket_capacity;  // start full: allow an initial burst
}

double AdmissionQueue::refill_rate() const {
  if (config_.token_rate_tps <= 0) return 0;
  return pressure_ ? config_.token_rate_tps * config_.pressure_refill_factor
                   : config_.token_rate_tps;
}

void AdmissionQueue::refill(sim::Time now) {
  if (config_.token_rate_tps <= 0) return;
  if (now <= last_refill_) return;
  const double elapsed_s = static_cast<double>(now - last_refill_) /
                           static_cast<double>(sim::kSecond);
  tokens_ = std::min(config_.bucket_capacity,
                     tokens_ + elapsed_s * refill_rate());
  last_refill_ = now;
}

std::size_t AdmissionQueue::class_cap(int klass) const {
  // Class 0 may fill the whole queue; class c only the first
  // capacity >> c slots, so lower priorities shed earlier.
  return std::max<std::size_t>(1, config_.queue_capacity >> klass);
}

AdmissionDecision AdmissionQueue::offer(std::uint64_t id, int klass,
                                        sim::Time now, SessionId session) {
  stats_.offered += 1;
  if (live_offered_ != nullptr) live_offered_->inc();
  klass = std::clamp(klass, 0, config_.classes - 1);
  refill(now);

  AdmissionDecision decision;
  // Guard both retry-after hints against a zero refill rate: with
  // pressure_refill_factor == 0 the bucket stops refilling entirely while
  // pressure is on, and dividing by it would cast inf to sim::Time (UB).
  // Fall back to the unthrottled one-millisecond hint instead.
  const double rate = refill_rate();
  if (depth() >= class_cap(klass)) {
    stats_.shed_queue_full += 1;
    if (live_shed_queue_full_ != nullptr) live_shed_queue_full_->inc();
    if (live_shed_total_ != nullptr) live_shed_total_->inc();
    decision.result = AdmitResult::kOverloaded;
    // The queue drains at (at most) the token rate; hint one slot's worth,
    // or a millisecond when unthrottled (capacity-bound, drain unknown).
    decision.retry_after =
        rate > 0 ? static_cast<sim::Time>(static_cast<double>(sim::kSecond) /
                                          rate)
                 : sim::kMillisecond;
    return decision;
  }
  if (config_.token_rate_tps > 0 && tokens_ < 1.0) {
    stats_.shed_rate_limited += 1;
    if (live_shed_rate_limited_ != nullptr) live_shed_rate_limited_->inc();
    if (live_shed_total_ != nullptr) live_shed_total_->inc();
    decision.result = AdmitResult::kOverloaded;
    decision.retry_after =
        rate > 0 ? static_cast<sim::Time>((1.0 - tokens_) / rate *
                                          static_cast<double>(sim::kSecond))
                 : sim::kMillisecond;
    return decision;
  }

  if (config_.token_rate_tps > 0) tokens_ -= 1.0;
  queues_[static_cast<std::size_t>(klass)].push_back(
      AdmittedRequest{id, klass, now, session});
  stats_.admitted += 1;
  stats_.depth_high_water = std::max(stats_.depth_high_water, depth());
  if (live_admitted_ != nullptr) live_admitted_->inc();
  if (live_depth_ != nullptr) live_depth_->set(static_cast<double>(depth()));
  return decision;
}

std::optional<AdmittedRequest> AdmissionQueue::pop() {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    AdmittedRequest request = queue.front();
    queue.pop_front();
    if (live_depth_ != nullptr) live_depth_->set(static_cast<double>(depth()));
    return request;
  }
  return std::nullopt;
}

std::size_t AdmissionQueue::depth() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

void AdmissionQueue::set_pressure(bool on, sim::Time now) {
  if (on == pressure_) return;
  // Settle the bucket at the old rate before switching.
  refill(now);
  pressure_ = on;
  if (on) {
    stats_.pressure_raised += 1;
    if (live_pressure_raised_ != nullptr) live_pressure_raised_->inc();
  }
}

void AdmissionQueue::attach_observability(obs::Registry& registry,
                                          const std::string& prefix) {
  live_offered_ = &registry.counter(prefix + "_offered_total",
                                    "requests offered");
  live_admitted_ = &registry.counter(prefix + "_admitted_total",
                                     "requests admitted");
  live_shed_queue_full_ =
      &registry.counter(prefix + "_shed_queue_full_total",
                        "requests shed: queue or class share exhausted");
  live_shed_rate_limited_ =
      &registry.counter(prefix + "_shed_rate_limited_total",
                        "requests shed: token bucket empty");
  live_shed_total_ =
      &registry.counter(prefix + "_shed_total", "requests shed, any reason");
  live_pressure_raised_ =
      &registry.counter(prefix + "_pressure_raised_total",
                        "downstream pressure off->on transitions");
  live_depth_ =
      &registry.gauge(prefix + "_depth", "requests queued right now");
}

void AdmissionQueue::publish_metrics(obs::Registry& registry,
                                     const std::string& prefix) const {
  registry.counter(prefix + "_offered_total", "requests offered")
      .set(stats_.offered);
  registry.counter(prefix + "_admitted_total", "requests admitted")
      .set(stats_.admitted);
  registry
      .counter(prefix + "_shed_queue_full_total",
               "requests shed: queue or class share exhausted")
      .set(stats_.shed_queue_full);
  registry
      .counter(prefix + "_shed_rate_limited_total",
               "requests shed: token bucket empty")
      .set(stats_.shed_rate_limited);
  registry
      .counter(prefix + "_shed_total", "requests shed, any reason")
      .set(stats_.shed_total());
  registry
      .counter(prefix + "_pressure_raised_total",
               "downstream pressure off->on transitions")
      .set(stats_.pressure_raised);
  registry
      .gauge(prefix + "_depth_high_water",
             "most requests ever queued at once")
      .set(static_cast<double>(stats_.depth_high_water));
}

}  // namespace bm::serve

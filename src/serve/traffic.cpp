#include "serve/traffic.hpp"

#include <cmath>

namespace bm::serve {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

TrafficGenerator::TrafficGenerator(const TrafficConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.rate_tps <= 0) config_.rate_tps = 1.0;
  if (config_.burst_rate_tps <= 0)
    config_.burst_rate_tps = 4.0 * config_.rate_tps;
  if (config_.peak_rate_tps <= 0)
    config_.peak_rate_tps = 2.0 * config_.rate_tps;
  if (config_.period <= 0) config_.period = sim::kSecond;
}

sim::Time TrafficGenerator::exponential(double rate_tps) {
  // Inverse-CDF: gap = -ln(1-u)/rate. uniform_double() is in [0,1), so
  // 1-u is in (0,1] and the log is finite.
  const double u = rng_.uniform_double();
  const double seconds = -std::log(1.0 - u) / rate_tps;
  return static_cast<sim::Time>(seconds * static_cast<double>(sim::kSecond));
}

double TrafficGenerator::diurnal_rate(sim::Time t) const {
  // Raised cosine between trough (rate_tps) and peak (peak_rate_tps):
  // trough at t = 0, peak at t = period/2.
  const double phase = 2.0 * kPi *
                       (static_cast<double>(t % config_.period) /
                        static_cast<double>(config_.period));
  const double blend = 0.5 * (1.0 - std::cos(phase));
  return config_.rate_tps +
         (config_.peak_rate_tps - config_.rate_tps) * blend;
}

sim::Time TrafficGenerator::next_arrival() {
  switch (config_.process) {
    case ArrivalProcess::kPoisson:
      now_ += exponential(config_.rate_tps);
      break;
    case ArrivalProcess::kMmpp: {
      // The arrival is drawn at the current phase's rate; the chain then
      // takes one per-arrival transition step.
      now_ += exponential(burst_ ? config_.burst_rate_tps : config_.rate_tps);
      if (burst_) burst_arrivals_ += 1;
      const double flip = rng_.uniform_double();
      if (burst_ ? flip < config_.p_exit_burst
                 : flip < config_.p_enter_burst)
        burst_ = !burst_;
      break;
    }
    case ArrivalProcess::kDiurnal: {
      // Lewis–Shedler thinning against the constant majorant peak_rate_tps:
      // every candidate draws exactly two uniforms (gap + acceptance), so
      // the schedule is a pure function of (config, seed).
      for (;;) {
        now_ += exponential(config_.peak_rate_tps);
        const double accept = rng_.uniform_double();
        if (accept < diurnal_rate(now_) / config_.peak_rate_tps) break;
      }
      break;
    }
  }
  arrivals_ += 1;
  return now_;
}

std::vector<sim::Time> TrafficGenerator::schedule(sim::Time horizon) {
  std::vector<sim::Time> arrivals;
  for (;;) {
    const sim::Time at = next_arrival();
    if (at > horizon) break;
    arrivals.push_back(at);
  }
  return arrivals;
}

SessionMix::SessionMix(std::size_t population, double zipf_s,
                       int rate_classes, double high_priority_share,
                       std::uint64_t seed)
    : population_(population > 0 ? population : 1),
      rate_classes_(rate_classes > 0 ? rate_classes : 1),
      high_priority_clients_(static_cast<std::size_t>(
          high_priority_share * static_cast<double>(population_))),
      zipf_(population_, zipf_s),
      rng_(seed) {
  if (high_priority_clients_ > population_)
    high_priority_clients_ = population_;
}

std::size_t SessionMix::next_client() {
  return static_cast<std::size_t>(zipf_.sample(rng_));
}

int SessionMix::rate_class_of(std::size_t client) const {
  if (client < high_priority_clients_) return 0;
  if (rate_classes_ <= 1) return 0;
  return 1 + static_cast<int>(client % static_cast<std::size_t>(
                                           rate_classes_ - 1));
}

}  // namespace bm::serve

// Hierarchical timer wheel for O(1) idle-timeout management.
//
// The session layer must arm, re-arm and cancel one idle timer per active
// session at 10^6-session scale; a binary heap would cost O(log n) per event
// and tombstone-heavy cancellation, and a naive scan O(n) per tick. This is
// the classic hashed hierarchical wheel (Varghese & Lauck): four levels of
// power-of-two slot arrays, per-slot intrusive doubly-linked lists, and
// per-level occupancy bitmaps so advancing skips empty slots in O(1).
//
//   level 0: 256 slots x 1 tick       (ticks      0 .. 2^8-1  ahead)
//   level 1:  64 slots x 2^8 ticks    (ticks    2^8 .. 2^14-1 ahead)
//   level 2:  64 slots x 2^14 ticks   (ticks   2^14 .. 2^20-1 ahead)
//   level 3:  64 slots x 2^20 ticks   (ticks   2^20 ..        ahead)
//
// A tick is `granularity` nanoseconds of simulated time. Deadlines are
// quantized up to the next tick, so a timer armed for T fires at the first
// wheel tick >= T. Entries beyond level 3's horizon simply re-cascade
// through level 3; every entry cascades at most a constant number of times
// per 2^20 ticks, keeping arm/disarm/fire O(1) amortized.
//
// Keys are dense small integers (the session layer uses slot indices), so
// the wheel stores one entry per key in a flat vector: arm(key) on an
// armed key is an O(1) unlink + relink, and memory is linear in the
// largest key ever armed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"

namespace bm::serve {

class TimerWheel {
 public:
  using Key = std::uint32_t;

  static constexpr sim::Time kNever = INT64_MAX;

  explicit TimerWheel(sim::Time granularity);

  /// Arm (or re-arm) `key` to fire at absolute simulated time `deadline`.
  void arm(Key key, sim::Time deadline);

  /// Cancel `key`'s timer; no-op when not armed.
  void disarm(Key key);

  bool armed(Key key) const;

  /// The deadline `key` is armed for (quantized); kNever when not armed.
  sim::Time deadline(Key key) const;

  /// Advance wheel time to `now`, invoking `fire(key)` for every timer
  /// whose (quantized) deadline is <= now. Fire order is deterministic.
  /// The callback may arm/disarm any key, including its own.
  template <typename F>
  void advance(sim::Time now, F&& fire) {
    const std::uint64_t target = tick_of(now);
    while (current_tick_ < target) {
      const std::uint64_t window_end = (current_tick_ | (kL0Slots - 1));
      if (current_tick_ < window_end) {
        const std::uint64_t chunk = window_end < target ? window_end : target;
        fire_l0_range(current_tick_ + 1, chunk, fire);
        current_tick_ = chunk;
        if (current_tick_ >= target) break;
      }
      // Crossing into the next 256-tick window: cascade the higher-level
      // slots that cover it, then fire anything landing on the first tick.
      current_tick_ = window_end + 1;
      cascade(current_tick_);
      fire_l0_range(current_tick_, current_tick_, fire);
    }
  }

  /// Earliest simulated time at which advance() could fire or cascade
  /// something; kNever when no timers are armed. Conservative: when only
  /// higher levels are occupied this returns the next window boundary, so a
  /// wakeup may fire nothing and simply cascade.
  sim::Time next_due() const;

  std::size_t size() const { return armed_count_; }
  sim::Time granularity() const { return granularity_; }

  /// Total timer fires + cascade relinks, for O(1)-cost assertions in tests.
  std::uint64_t work_done() const { return work_done_; }

 private:
  static constexpr std::uint32_t kL0Bits = 8;
  static constexpr std::uint32_t kLBits = 6;
  static constexpr std::uint32_t kL0Slots = 1u << kL0Bits;   // 256
  static constexpr std::uint32_t kLSlots = 1u << kLBits;     // 64
  static constexpr std::int32_t kNil = -1;

  struct Entry {
    std::uint64_t tick = 0;   // quantized deadline, in ticks
    std::int32_t next = kNil;
    std::int32_t prev = kNil;
    std::int32_t bucket = kNil;  // flat bucket index, kNil when not armed
  };

  std::uint64_t tick_of(sim::Time t) const {
    if (t <= 0) return 0;
    return static_cast<std::uint64_t>(t) /
           static_cast<std::uint64_t>(granularity_);
  }
  std::uint64_t deadline_tick(sim::Time deadline) const {
    if (deadline <= 0) return current_tick_ + 1;
    const std::uint64_t g = static_cast<std::uint64_t>(granularity_);
    std::uint64_t tick = (static_cast<std::uint64_t>(deadline) + g - 1) / g;
    if (tick <= current_tick_) tick = current_tick_ + 1;
    return tick;
  }

  /// Flat bucket index for a deadline tick, given the current tick.
  std::int32_t bucket_for(std::uint64_t tick) const;
  void link(Key key, std::uint64_t tick);
  void unlink(Key key);
  void cascade(std::uint64_t window_start);
  void mark(std::int32_t bucket, bool occupied);

  template <typename F>
  void fire_l0_range(std::uint64_t from, std::uint64_t to, F&& fire) {
    // All ticks in [from, to] share one 256-slot window; walk only the
    // occupied slots via the level-0 bitmap words.
    for (std::uint64_t t = from; t <= to;) {
      const std::uint32_t slot = static_cast<std::uint32_t>(t & (kL0Slots - 1));
      const std::uint32_t word = slot >> 6;
      std::uint64_t bits = l0_bitmap_[word] >> (slot & 63);
      if (bits == 0) {  // skip to the next bitmap word boundary
        t += 64 - (slot & 63);
        continue;
      }
      const std::uint32_t skip = lowest_bit(bits);
      t += skip;
      if (t > to) break;
      fire_slot(static_cast<std::uint32_t>(t & (kL0Slots - 1)), fire);
      ++t;
    }
  }

  template <typename F>
  void fire_slot(std::uint32_t slot, F&& fire) {
    // Detach the whole list first: the callback may re-arm into this slot
    // for a later lap of the wheel.
    std::int32_t head = heads_[slot];
    heads_[slot] = kNil;
    mark(static_cast<std::int32_t>(slot), false);
    while (head != kNil) {
      const Key key = static_cast<Key>(head);
      Entry& e = entries_[static_cast<std::size_t>(head)];
      head = e.next;
      e.next = e.prev = kNil;
      e.bucket = kNil;
      --armed_count_;
      ++work_done_;
      fire(key);
    }
  }

  static std::uint32_t lowest_bit(std::uint64_t bits);

  sim::Time granularity_;
  std::uint64_t current_tick_ = 0;
  std::size_t armed_count_ = 0;
  std::uint64_t work_done_ = 0;
  std::vector<Entry> entries_;  // indexed by key
  // Flat bucket heads: [0,256) level 0, then 3 x 64 higher levels.
  std::int32_t heads_[kL0Slots + 3 * kLSlots];
  std::uint64_t l0_bitmap_[kL0Slots / 64];
  std::uint64_t l_bitmap_[3];
};

}  // namespace bm::serve

#include <gtest/gtest.h>

#include "bmac/policy_circuit.hpp"

namespace bm::bmac {
namespace {

using fabric::EncodedId;
using fabric::Msp;
using fabric::Role;

Msp make_msp(int orgs) {
  Msp msp;
  for (int i = 1; i <= orgs; ++i) msp.add_org("Org" + std::to_string(i));
  return msp;
}

TEST(RegisterFile, SetAndClear) {
  RegisterFile regs(4);
  const EncodedId peer2 = EncodedId::make(2, Role::kPeer, 0);
  EXPECT_FALSE(regs.get(2, Role::kPeer));
  regs.set(peer2, true);
  EXPECT_TRUE(regs.get(2, Role::kPeer));
  EXPECT_FALSE(regs.get(2, Role::kAdmin));  // role bits independent
  EXPECT_FALSE(regs.get(1, Role::kPeer));   // org registers independent
  regs.set(peer2, false);
  EXPECT_FALSE(regs.get(2, Role::kPeer));
  regs.set(peer2, true);
  regs.clear();
  EXPECT_FALSE(regs.get(2, Role::kPeer));
}

TEST(RegisterFile, OutOfRangeOrgIsConstantFalse) {
  RegisterFile regs(2);
  regs.set(EncodedId::make(9, Role::kPeer, 0), true);  // ignored
  EXPECT_FALSE(regs.get(9, Role::kPeer));
  EXPECT_FALSE(regs.get(0, Role::kPeer));
}

TEST(PolicyCircuit, PaperExampleGateCount) {
  // §3.3: "2-outof-3 orgs" compiles to three 2-input ANDs + one 3-input OR.
  const Msp msp = make_msp(3);
  const auto policy =
      fabric::parse_policy_or_throw("2-outof-3 orgs", msp.org_names());
  const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);
  const CircuitStats stats = circuit.stats();
  EXPECT_EQ(stats.inputs, 3u);
  EXPECT_EQ(stats.and_gates, 3u);
  EXPECT_EQ(stats.or_gates, 1u);
  EXPECT_EQ(stats.threshold_gates, 0u);
}

// Property: the compiled circuit agrees with the AST evaluator on every
// subset of valid endorsements.
class CircuitEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(CircuitEquivalence, MatchesAstOnAllSubsets) {
  const Msp msp = make_msp(4);
  const auto policy =
      fabric::parse_policy_or_throw(GetParam(), msp.org_names());
  const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);

  for (unsigned mask = 0; mask < 16; ++mask) {
    RegisterFile regs(16);
    std::vector<EncodedId> valid;
    for (int org = 0; org < 4; ++org) {
      if (mask & (1u << org)) {
        const EncodedId id =
            EncodedId::make(static_cast<std::uint8_t>(org + 1), Role::kPeer, 0);
        regs.set(id, true);
        valid.push_back(id);
      }
    }
    EXPECT_EQ(circuit.evaluate(regs), policy.evaluate_ids(valid, msp))
        << GetParam() << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CircuitEquivalence,
    ::testing::Values(
        "Org1 & Org2", "Org1 | Org3", "1of1", "2of2", "2of3", "3of3", "2of4",
        "3of4", "4of4", "Org1 & (Org2 | Org3)",
        "(Org1 & Org2) | (Org3 & Org4)",
        "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | "
        "(Org3 & Org4)",
        "2of(Org1 & Org2, Org3, Org4)"));

TEST(PolicyCircuit, RoleSensitivity) {
  const Msp msp = make_msp(2);
  const auto policy =
      fabric::parse_policy_or_throw("Org1.admin & Org2", msp.org_names());
  const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);

  RegisterFile regs(16);
  regs.set(EncodedId::make(1, Role::kPeer, 0), true);  // wrong role
  regs.set(EncodedId::make(2, Role::kPeer, 0), true);
  EXPECT_FALSE(circuit.evaluate(regs));
  regs.set(EncodedId::make(1, Role::kAdmin, 0), true);
  EXPECT_TRUE(circuit.evaluate(regs));
}

TEST(PolicyCircuit, UnknownOrgCompilesToConstantFalse) {
  const Msp msp = make_msp(2);
  const auto policy =
      fabric::parse_policy_or_throw("Org1 | OrgUnknown", {"Org1", "OrgUnknown"});
  const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);
  RegisterFile regs(16);
  regs.set(EncodedId::make(1, Role::kPeer, 0), true);
  EXPECT_TRUE(circuit.evaluate(regs));  // Org1 branch satisfies
  regs.clear();
  EXPECT_FALSE(circuit.evaluate(regs));
}

TEST(PolicyCircuit, LargeThresholdUsesThresholdGate) {
  // 5-of-10 over explicit sub-policies: C(10,5)=252 > expansion limit.
  Msp msp;
  std::vector<std::string> orgs;
  for (int i = 1; i <= 10; ++i) {
    orgs.push_back("Org" + std::to_string(i));
    msp.add_org(orgs.back());
  }
  const auto policy = fabric::parse_policy_or_throw("5of10", orgs);
  const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);
  EXPECT_EQ(circuit.stats().threshold_gates, 1u);

  RegisterFile regs(16);
  for (int org = 1; org <= 4; ++org)
    regs.set(EncodedId::make(static_cast<std::uint8_t>(org), Role::kPeer, 0),
             true);
  EXPECT_FALSE(circuit.evaluate(regs));
  regs.set(EncodedId::make(5, Role::kPeer, 0), true);
  EXPECT_TRUE(circuit.evaluate(regs));
}

TEST(PolicyCircuit, MonotoneUnderMoreEndorsements) {
  // Adding endorsements can never turn a satisfied policy unsatisfied —
  // the property that makes short-circuit evaluation sound.
  const Msp msp = make_msp(4);
  for (const char* text : {"2of3", "Org1 & Org2", "(Org1 & Org2) | Org4"}) {
    const auto policy = fabric::parse_policy_or_throw(text, msp.org_names());
    const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);
    for (unsigned mask = 0; mask < 16; ++mask) {
      RegisterFile regs(16);
      for (int org = 0; org < 4; ++org)
        if (mask & (1u << org))
          regs.set(EncodedId::make(static_cast<std::uint8_t>(org + 1),
                                   Role::kPeer, 0),
                   true);
      if (!circuit.evaluate(regs)) continue;
      for (int extra = 0; extra < 4; ++extra) {
        RegisterFile more(16);
        for (int org = 0; org < 4; ++org)
          if ((mask | (1u << extra)) & (1u << org))
            more.set(EncodedId::make(static_cast<std::uint8_t>(org + 1),
                                     Role::kPeer, 0),
                     true);
        EXPECT_TRUE(circuit.evaluate(more)) << text;
      }
    }
  }
}

TEST(PolicyCircuit, StatsGateInputsCounted) {
  const Msp msp = make_msp(3);
  const auto policy =
      fabric::parse_policy_or_throw("2-outof-3 orgs", msp.org_names());
  const PolicyCircuit circuit = PolicyCircuit::compile(policy, msp);
  // 3 ANDs x 2 inputs + 1 OR x 3 inputs = 9.
  EXPECT_EQ(circuit.stats().total_gate_inputs, 9u);
  EXPECT_EQ(circuit.source_text(), "2-outof-3 orgs");
}

}  // namespace
}  // namespace bm::bmac

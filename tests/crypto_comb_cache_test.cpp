// Differential tests for the per-point Lim-Lee comb tables and the
// per-identity CombCache: every comb result must be bit-identical to the
// generic scalar-multiplication and verification paths, including edge
// scalars and cache eviction churn.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/comb_cache.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"

namespace bm::crypto {
namespace {

AffinePoint random_point(Rng& rng) {
  const U256 k = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
  return to_affine(scalar_mult(k, p256_generator()));
}

std::vector<U256> edge_scalars() {
  const U256 one = U256::from_u64(1);
  U256 n_minus_1 = p256_n();
  sub(n_minus_1, n_minus_1, one);
  U256 n_plus_1;
  add(n_plus_1, p256_n(), one);
  U256 all_ones;
  all_ones.w.fill(~std::uint64_t{0});
  return {U256{}, one, n_minus_1, p256_n(), n_plus_1, all_ones};
}

TEST(PointCombTable, MatchesGenericScalarMult) {
  Rng rng(11);
  for (int pt = 0; pt < 3; ++pt) {
    const AffinePoint p = random_point(rng);
    const PointCombTable table = PointCombTable::build(p);
    EXPECT_EQ(table.point(), p);
    for (int i = 0; i < 8; ++i) {
      const U256 k = U256::from_bytes_be(rng.bytes(32));
      EXPECT_EQ(to_affine(table.mult(k)), to_affine(scalar_mult_wnaf(k, p)));
      EXPECT_EQ(to_affine(table.mult(k)), to_affine(scalar_mult_naive(k, p)));
    }
  }
}

TEST(PointCombTable, EdgeScalars) {
  Rng rng(12);
  const AffinePoint p = random_point(rng);
  const PointCombTable table = PointCombTable::build(p);
  for (const U256& k : edge_scalars())
    EXPECT_EQ(to_affine(table.mult(k)), to_affine(scalar_mult_naive(k, p)));
}

TEST(PointCombTable, InfinityPoint) {
  const PointCombTable table = PointCombTable::build(AffinePoint{{}, {}, true});
  EXPECT_TRUE(table.mult(U256::from_u64(7)).is_infinity());
  EXPECT_TRUE(table.mult(U256{}).is_infinity());
}

TEST(PointCombTable, DoubleScalarMatchesGeneric) {
  Rng rng(13);
  const AffinePoint q = random_point(rng);
  const PointCombTable table = PointCombTable::build(q);
  for (int i = 0; i < 8; ++i) {
    const U256 u1 = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
    const U256 u2 = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
    EXPECT_EQ(to_affine(double_scalar_mult_comb(u1, u2, table)),
              to_affine(double_scalar_mult(u1, u2, q)));
  }
  // Degenerate operands: one or both scalars zero.
  const U256 u = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
  EXPECT_EQ(to_affine(double_scalar_mult_comb(U256{}, u, table)),
            to_affine(double_scalar_mult(U256{}, u, q)));
  EXPECT_EQ(to_affine(double_scalar_mult_comb(u, U256{}, table)),
            to_affine(double_scalar_mult(u, U256{}, q)));
  EXPECT_TRUE(double_scalar_mult_comb(U256{}, U256{}, table).is_infinity());
}

TEST(VerifyComb, MatchesGenericVerify) {
  Rng rng(14);
  const PrivateKey key = key_from_seed(to_bytes("comb-verify"));
  const PublicKey pub = key.public_key();
  const PointCombTable table = PointCombTable::build(pub.point);
  for (int i = 0; i < 6; ++i) {
    const Digest digest = sha256(rng.bytes(48));
    Signature sig = sign(key, digest);
    EXPECT_TRUE(verify_comb(pub, digest, sig, table));
    EXPECT_EQ(verify_comb(pub, digest, sig, table), verify(pub, digest, sig));

    // Tampered signature and wrong digest must fail identically.
    Signature bad = sig;
    bad.s = add_mod(bad.s, U256::from_u64(1), p256_n());
    EXPECT_EQ(verify_comb(pub, digest, bad, table), verify(pub, digest, bad));
    EXPECT_FALSE(verify_comb(pub, digest, bad, table));
    const Digest other = sha256(rng.bytes(48));
    EXPECT_EQ(verify_comb(pub, other, sig, table), verify(pub, other, sig));
    EXPECT_FALSE(verify_comb(pub, other, sig, table));
  }
  // Out-of-range signature components are rejected before any multiply.
  Signature zero{};
  const Digest digest = sha256(to_bytes("d"));
  EXPECT_EQ(verify_comb(pub, digest, zero, table), verify(pub, digest, zero));
  EXPECT_FALSE(verify_comb(pub, digest, zero, table));
}

TEST(CombCache, HitMissAccounting) {
  CombCache cache(4);
  const PrivateKey k1 = key_from_seed(to_bytes("cc1"));
  const PrivateKey k2 = key_from_seed(to_bytes("cc2"));
  const Digest digest = sha256(to_bytes("payload"));

  EXPECT_TRUE(cache.verify(k1.public_key(), digest, sign(k1, digest)));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_TRUE(cache.verify(k1.public_key(), digest, sign(k1, digest)));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(cache.verify(k2.public_key(), digest, sign(k2, digest)));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Same table object handed back for the same key.
  const auto t1 = cache.table_for(k1.public_key());
  const auto t2 = cache.table_for(k1.public_key());
  EXPECT_EQ(t1.get(), t2.get());
  EXPECT_EQ(t1->point(), k1.public_key().point);
}

TEST(CombCache, EvictionAndRebuildUnderChurn) {
  // Capacity 2, four identities verifying round-robin: every access past
  // the first pass misses and evicts, and every verification must still
  // agree with the generic path.
  CombCache cache(2);
  std::vector<PrivateKey> keys;
  for (int i = 0; i < 4; ++i)
    keys.push_back(key_from_seed(to_bytes("churn" + std::to_string(i))));

  Rng rng(15);
  for (int round = 0; round < 3; ++round) {
    for (const PrivateKey& key : keys) {
      const Digest digest = sha256(rng.bytes(32));
      const Signature sig = sign(key, digest);
      EXPECT_TRUE(cache.verify(key.public_key(), digest, sig));
      EXPECT_EQ(cache.verify(key.public_key(), digest, sig),
                verify(key.public_key(), digest, sig));
      EXPECT_LE(cache.size(), 2u);
    }
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_GT(cache.misses(), 4u);  // rebuilt after eviction

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  const Digest digest = sha256(to_bytes("after-clear"));
  EXPECT_TRUE(
      cache.verify(keys[0].public_key(), digest, sign(keys[0], digest)));
}

TEST(CombCache, InvalidKeyBypassesTableBuild) {
  CombCache cache(4);
  PublicKey bogus;
  bogus.point.infinity = true;
  const Digest digest = sha256(to_bytes("x"));
  const PrivateKey real = key_from_seed(to_bytes("real"));
  const Signature sig = sign(real, digest);
  EXPECT_FALSE(cache.verify(bogus, digest, sig));
  EXPECT_EQ(cache.size(), 0u);  // no table built for an invalid key
  EXPECT_EQ(cache.misses(), 0u);
}

}  // namespace
}  // namespace bm::crypto

#include <gtest/gtest.h>

#include <set>

#include "workload/metrics.hpp"
#include "workload/network_harness.hpp"
#include "workload/synthetic.hpp"

namespace bm::workload {
namespace {

TEST(Metrics, MeanAndPercentiles) {
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(mean(values), 5.5);
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 10);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 5.5);
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 10);
  EXPECT_NEAR(s.p95, 9.55, 0.01);
  EXPECT_TRUE(summarize({}).mean == 0);
}

TEST(Metrics, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0);    // empty -> 0, no indexing
  EXPECT_DOUBLE_EQ(percentile({7}, 0), 7);    // single sample is every p
  EXPECT_DOUBLE_EQ(percentile({7}, 100), 7);
  EXPECT_DOUBLE_EQ(percentile({1, 2}, -10), 1);   // p clamped to [0,100]
  EXPECT_DOUBLE_EQ(percentile({1, 2}, 250), 2);
  EXPECT_DOUBLE_EQ(percentile({3, 1}, 50), 2);    // input need not be sorted
}

TEST(Metrics, StddevAndSummaryCount) {
  EXPECT_DOUBLE_EQ(stddev({}), 0);
  EXPECT_DOUBLE_EQ(stddev({5}), 0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Smallbank, ProducesRealisticRwSets) {
  SmallbankChaincode chaincode({.accounts = 100});
  fabric::StateDb state;
  Rng rng(1);
  int total_reads = 0, total_writes = 0;
  for (int i = 0; i < 300; ++i) {
    const ChaincodeResult result = chaincode.execute(rng, state);
    EXPECT_FALSE(result.op.empty());
    EXPECT_LE(result.rwset.reads.size(), 2u);
    EXPECT_GE(result.rwset.writes.size(), 1u);
    EXPECT_LE(result.rwset.writes.size(), 2u);
    total_reads += static_cast<int>(result.rwset.reads.size());
    total_writes += static_cast<int>(result.rwset.writes.size());
  }
  EXPECT_NEAR(total_reads / 300.0, chaincode.avg_reads(), 0.3);
  EXPECT_NEAR(total_writes / 300.0, chaincode.avg_writes(), 0.3);
}

TEST(Smallbank, ReadsObserveCommittedVersions) {
  SmallbankChaincode chaincode({.accounts = 4});
  fabric::StateDb state;
  state.put(fabric::StateDb::namespaced("smallbank", "savings_1"),
            to_bytes("500"), fabric::Version{7, 3});
  Rng rng(2);
  bool saw_versioned_read = false;
  for (int i = 0; i < 200 && !saw_versioned_read; ++i) {
    const ChaincodeResult result = chaincode.execute(rng, state);
    for (const auto& read : result.rwset.reads)
      if (read.key == "savings_1" && read.version == fabric::Version{7, 3})
        saw_versioned_read = true;
  }
  EXPECT_TRUE(saw_versioned_read);
}

TEST(Smallbank, SplitPaymentScalesDbAccesses) {
  SmallbankChaincode split({.accounts = 100, .split_payment_accounts = 5});
  fabric::StateDb state;
  Rng rng(3);
  const ChaincodeResult result = split.execute(rng, state);
  EXPECT_EQ(result.op, "split_payment");
  EXPECT_EQ(result.rwset.reads.size(), 6u);   // 1 source + 5 destinations
  EXPECT_EQ(result.rwset.writes.size(), 6u);
  EXPECT_DOUBLE_EQ(split.avg_reads(), 6.0);
}

TEST(Drm, FewerDbAccessesThanSmallbank) {
  // Fig. 8: drm has fewer database requests than smallbank.
  DrmChaincode drm({.assets = 100});
  SmallbankChaincode smallbank({.accounts = 100});
  EXPECT_LT(drm.avg_reads() + drm.avg_writes(),
            smallbank.avg_reads() + smallbank.avg_writes());
}

TEST(Drm, OperationsCoverCreateUpdateTransfer) {
  DrmChaincode drm({.assets = 20});
  fabric::StateDb state;
  Rng rng(4);
  std::set<std::string> ops;
  for (int i = 0; i < 100; ++i) ops.insert(drm.execute(rng, state).op);
  EXPECT_EQ(ops.size(), 3u);
}

TEST(NetworkHarness, ProducesValidBlocks) {
  NetworkOptions options;
  options.block_size = 5;
  FabricNetworkHarness harness(options);
  const fabric::Block block = harness.next_block();
  EXPECT_EQ(block.tx_count(), 5u);
  EXPECT_EQ(block.header.number, 0u);
  const auto& reference = harness.reference_result(0);
  EXPECT_TRUE(reference.block_valid);
  EXPECT_EQ(reference.valid_tx_count, 5u);

  const fabric::Block block2 = harness.next_block();
  EXPECT_EQ(block2.header.number, 1u);
}

TEST(NetworkHarness, FaultInjectionProducesInvalidTxs) {
  NetworkOptions options;
  options.block_size = 20;
  options.bad_signature_rate = 0.3;
  options.missing_endorsement_rate = 0.3;
  options.conflicting_read_rate = 0.3;
  options.seed = 9;
  FabricNetworkHarness harness(options);
  harness.next_block();
  const fabric::Block block = harness.next_block();  // conflicts need history
  const auto& reference = harness.reference_result(block.header.number);
  EXPECT_LT(reference.valid_tx_count, 20u);
  EXPECT_GT(reference.valid_tx_count, 0u);
}

TEST(NetworkHarness, DeterministicForSeed) {
  NetworkOptions options;
  options.block_size = 4;
  options.seed = 77;
  FabricNetworkHarness a(options), b(options);
  EXPECT_TRUE(equal(a.next_block().marshal(), b.next_block().marshal()));
}

// --- Synthetic DES runner: reproduce the paper's headline hardware numbers ---

SyntheticSpec base_spec() {
  SyntheticSpec spec;
  spec.blocks = 30;
  spec.block_size = 150;
  spec.ends_attached = 2;
  spec.policy_text = "2-outof-2 orgs";
  spec.org_count = 4;
  return spec;
}

TEST(HwWorkload, Fig7bThroughputAnchors) {
  // 4 / 8 / 16 tx_validators at block 150: paper reports 25,800 / 49,200 /
  // 86,100 tps. The DES must land within ~10%.
  auto spec = base_spec();
  spec.hw.tx_validators = 4;
  EXPECT_NEAR(run_hw_workload(spec).tps, 25800, 2600);
  spec.hw.tx_validators = 8;
  EXPECT_NEAR(run_hw_workload(spec).tps, 49200, 4900);
  spec.hw.tx_validators = 16;
  EXPECT_NEAR(run_hw_workload(spec).tps, 86100, 8600);
}

TEST(HwWorkload, ScalingEfficiencyNearPaper) {
  // 4 -> 16 validators gave 3.3x in the paper (vs ideal 4x).
  auto spec = base_spec();
  spec.hw.tx_validators = 4;
  const double at4 = run_hw_workload(spec).tps;
  spec.hw.tx_validators = 16;
  const double at16 = run_hw_workload(spec).tps;
  EXPECT_GT(at16 / at4, 3.0);
  EXPECT_LT(at16 / at4, 3.8);
}

TEST(HwWorkload, ShortCircuitDoublesTwoOfThree) {
  // Fig. 7e: 2of3 (49,200) vs 3of3 (25,800) on the 8x2 architecture.
  auto spec = base_spec();
  spec.ends_attached = 3;
  spec.policy_text = "2-outof-3 orgs";
  const auto two_of_three = run_hw_workload(spec);
  spec.policy_text = "3-outof-3 orgs";
  const auto three_of_three = run_hw_workload(spec);
  EXPECT_GT(two_of_three.tps / three_of_three.tps, 1.7);
  EXPECT_GT(two_of_three.ecdsa_skipped, 0u);
  EXPECT_EQ(three_of_three.ecdsa_skipped, 0u);
}

TEST(HwWorkload, ArchitectureAdaptability) {
  // Fig. 7f: 8x2 wins for 2ofN, 5x3 wins for 3ofN.
  auto spec = base_spec();
  spec.ends_attached = 3;

  spec.policy_text = "2-outof-3 orgs";
  spec.hw = {.tx_validators = 8, .engines_per_vscc = 2};
  const double tps_8x2_2of3 = run_hw_workload(spec).tps;
  spec.hw = {.tx_validators = 5, .engines_per_vscc = 3};
  const double tps_5x3_2of3 = run_hw_workload(spec).tps;
  EXPECT_GT(tps_8x2_2of3, tps_5x3_2of3 * 1.3);

  spec.policy_text = "3-outof-3 orgs";
  spec.hw = {.tx_validators = 8, .engines_per_vscc = 2};
  const double tps_8x2_3of3 = run_hw_workload(spec).tps;
  spec.hw = {.tx_validators = 5, .engines_per_vscc = 3};
  const double tps_5x3_3of3 = run_hw_workload(spec).tps;
  EXPECT_GT(tps_5x3_3of3, tps_8x2_3of3 * 1.15);
}

TEST(HwWorkload, DbAccessesHiddenByVsccLatency) {
  // Fig. 7g: hardware throughput flat from 3 to 13 rw per tx.
  auto spec = base_spec();
  spec.reads_per_tx = 1.5;
  spec.writes_per_tx = 1.5;
  const double light = run_hw_workload(spec).tps;
  spec.reads_per_tx = 6.5;
  spec.writes_per_tx = 6.5;
  const double heavy = run_hw_workload(spec).tps;
  EXPECT_NEAR(heavy / light, 1.0, 0.03);
}

TEST(HwWorkload, ThroughputGrowsWithBlockSize) {
  auto spec = base_spec();
  spec.block_size = 50;
  const double small = run_hw_workload(spec).tps;
  spec.block_size = 250;
  const double large = run_hw_workload(spec).tps;
  EXPECT_GT(large, small * 1.15);
  EXPECT_GT(small, 30000);  // paper: minimum 38,000 at 8x2 (we allow margin)
}

TEST(HwWorkload, PeakMatchesPaperHeadline) {
  // 16x2, block 250: the paper's 95,600 tps headline.
  auto spec = base_spec();
  spec.blocks = 40;
  spec.block_size = 250;
  spec.hw.tx_validators = 16;
  const auto result = run_hw_workload(spec);
  EXPECT_NEAR(result.tps, 95600, 9000);
  EXPECT_LT(result.block_latency_ms, 5.0);  // "<5 ms" claim
}

TEST(SwModel, EndorserSlowerThanValidator) {
  const auto result = run_sw_model(base_spec(), 8);
  EXPECT_GT(result.validator_tps, result.endorser_tps * 1.35);
}

TEST(SwModel, ComplexPolicyCollapsesSoftware) {
  // Fig. 7f: the complex policy drops the software peer to ~2,700 tps.
  auto spec = base_spec();
  spec.ends_attached = 4;
  spec.policy_text =
      "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | "
      "(Org3 & Org4)";
  const auto result = run_sw_model(spec, 8);
  EXPECT_NEAR(result.validator_tps, 2700, 300);
}

TEST(HwVsSw, SpeedupAtLeastTenfold) {
  // Fig. 7a: the BMac peer always delivered >= 10x the software validator.
  auto spec = base_spec();
  for (int size : {50, 150, 250}) {
    spec.block_size = size;
    const double hw = run_hw_workload(spec).tps;
    const double sw = run_sw_model(spec, 8).validator_tps;
    EXPECT_GE(hw / sw, 10.0) << "block size " << size;
  }
}

}  // namespace
}  // namespace bm::workload

#include <gtest/gtest.h>

#include <set>

#include "fabric/identity.hpp"

namespace bm::fabric {
namespace {

TEST(EncodedId, PackingRoundTrip) {
  for (std::uint8_t org : {1, 2, 17, 255}) {
    for (const Role role : {Role::kOrderer, Role::kAdmin, Role::kPeer,
                            Role::kClient}) {
      for (std::uint8_t seq : {0, 1, 15}) {
        const EncodedId id = EncodedId::make(org, role, seq);
        EXPECT_EQ(id.org(), org);
        EXPECT_EQ(id.role(), role);
        EXPECT_EQ(id.seq(), seq);
      }
    }
  }
}

TEST(EncodedId, UniqueAcrossNodes) {
  // The paper's scheme: unique ids across all nodes of a Fabric network.
  std::set<std::uint16_t> seen;
  for (std::uint8_t org = 1; org <= 4; ++org)
    for (int role = 0; role < 4; ++role)
      for (std::uint8_t seq = 0; seq < 16; ++seq)
        EXPECT_TRUE(seen.insert(EncodedId::make(org, static_cast<Role>(role),
                                                seq).value).second);
}

TEST(Certificate, MarshalRoundTrip) {
  CertificateAuthority ca("Org1", 1);
  const Identity peer = ca.issue(Role::kPeer, 0, "peer0.org1.example.com");
  const Bytes marshaled = peer.cert.marshal();
  const auto parsed = Certificate::unmarshal(marshaled);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subject_cn, "peer0.org1.example.com");
  EXPECT_EQ(parsed->org_name, "Org1");
  EXPECT_EQ(parsed->role, Role::kPeer);
  EXPECT_EQ(parsed->public_key, peer.cert.public_key);
  EXPECT_TRUE(equal(parsed->marshal(), marshaled));
}

TEST(Certificate, SizeMatchesPaperMeasurement) {
  // §3.2: each identity is an X.509 certificate of ~860 bytes.
  CertificateAuthority ca("Org1", 1);
  const Identity peer = ca.issue(Role::kPeer, 0, "peer0.org1.example.com");
  const std::size_t size = peer.cert.marshal().size();
  EXPECT_GE(size, 800u);
  EXPECT_LE(size, 950u);
}

TEST(Certificate, UnmarshalRejectsGarbage) {
  EXPECT_FALSE(Certificate::unmarshal(to_bytes("not a certificate")).has_value());
  EXPECT_FALSE(Certificate::unmarshal(Bytes{}).has_value());
}

TEST(CertificateAuthority, VerifiesOwnCerts) {
  CertificateAuthority ca("Org1", 1);
  const Identity peer = ca.issue(Role::kPeer, 0, "peer0.org1");
  EXPECT_TRUE(ca.verify_cert(peer.cert));
}

TEST(CertificateAuthority, RejectsForeignAndTamperedCerts) {
  CertificateAuthority ca1("Org1", 1);
  CertificateAuthority ca2("Org2", 2);
  const Identity peer = ca1.issue(Role::kPeer, 0, "peer0.org1");
  EXPECT_FALSE(ca2.verify_cert(peer.cert));

  Certificate tampered = peer.cert;
  tampered.subject_cn = "evil.org1";
  EXPECT_FALSE(ca1.verify_cert(tampered));

  Certificate bad_sig = peer.cert;
  bad_sig.ca_signature.back() ^= 1;
  EXPECT_FALSE(ca1.verify_cert(bad_sig));
}

TEST(CertificateAuthority, DeterministicIssuance) {
  CertificateAuthority a("Org1", 1);
  CertificateAuthority b("Org1", 1);
  EXPECT_TRUE(equal(a.issue(Role::kPeer, 0, "x").cert.marshal(),
                    b.issue(Role::kPeer, 0, "x").cert.marshal()));
}

TEST(Msp, OrgRegistrationAndLookup) {
  Msp msp;
  msp.add_org("Org1");
  msp.add_org("Org2");
  EXPECT_EQ(msp.org_count(), 2u);
  ASSERT_NE(msp.find_org("Org1"), nullptr);
  EXPECT_EQ(msp.find_org("Org1")->org_index(), 1);
  EXPECT_EQ(msp.find_org("Org2")->org_index(), 2);
  EXPECT_EQ(msp.find_org("Org3"), nullptr);
  EXPECT_EQ(msp.find_org(std::uint8_t{1})->org_name(), "Org1");
  EXPECT_EQ(msp.find_org(std::uint8_t{0}), nullptr);
  EXPECT_EQ(msp.find_org(std::uint8_t{3}), nullptr);
  EXPECT_EQ(msp.org_names(), (std::vector<std::string>{"Org1", "Org2"}));
}

TEST(Msp, ValidatesAcrossOrgs) {
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  msp.add_org("Org2");
  const Identity peer = org1.issue(Role::kPeer, 3, "peer3.org1");
  EXPECT_TRUE(msp.validate(peer.cert));
  // Cached second lookup gives the same answer.
  EXPECT_TRUE(msp.validate(peer.cert));

  CertificateAuthority rogue("Org1", 1);  // same name, different root key?
  // Deterministic key derivation makes it identical; use unknown org instead.
  CertificateAuthority unknown("OrgX", 9);
  EXPECT_FALSE(msp.validate(unknown.issue(Role::kPeer, 0, "p").cert));
}

TEST(Msp, EncodesIdsFromCerts) {
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  auto& org2 = msp.add_org("Org2");
  const auto id1 = msp.encode(org1.issue(Role::kPeer, 0, "p0.org1").cert);
  const auto id2 = msp.encode(org2.issue(Role::kClient, 2, "c2.org2").cert);
  ASSERT_TRUE(id1 && id2);
  EXPECT_EQ(id1->org(), 1);
  EXPECT_EQ(id1->role(), Role::kPeer);
  EXPECT_EQ(id1->seq(), 0);
  EXPECT_EQ(id2->org(), 2);
  EXPECT_EQ(id2->role(), Role::kClient);
  EXPECT_EQ(id2->seq(), 2);

  CertificateAuthority unknown("OrgX", 9);
  EXPECT_FALSE(msp.encode(unknown.issue(Role::kPeer, 0, "p").cert).has_value());
}

TEST(Identity, SignaturesVerifyAgainstCertKey) {
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  const Identity peer = org1.issue(Role::kPeer, 0, "p0");
  const crypto::Digest digest = crypto::sha256(to_bytes("data"));
  const crypto::Signature sig = peer.sign(digest);
  EXPECT_TRUE(crypto::verify(peer.cert.public_key, digest, sig));
}

}  // namespace
}  // namespace bm::fabric

// Unit tests for the shared scenario-config facility (common/config.hpp):
// absent-key no-ops, ranged numerics, required readers, enums, arrays, and
// the uniform "<file>: <path>: <message>" diagnostic contract every JSON
// loader in the repo now relies on.
#include "common/config.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/faults.hpp"
#include "obs/slo.hpp"
#include "serve/config.hpp"
#include "serve/scenario.hpp"

namespace {

using namespace bm;

TEST(ConfigRoot, RejectsInvalidJsonWithRootLabel) {
  config::Root root = config::Root::parse("{nope", "serve");
  EXPECT_FALSE(root.ok());
  EXPECT_NE(root.error().find("serve"), std::string::npos);
  EXPECT_NE(root.error().find("invalid JSON"), std::string::npos);
  EXPECT_FALSE(root.section().present());
}

TEST(ConfigRoot, RejectsNonObjectRoot) {
  config::Root root = config::Root::parse("[1, 2]", "slo");
  EXPECT_FALSE(root.ok());
  EXPECT_EQ(root.error(), "slo: expected an object");
}

TEST(ConfigRoot, FileLabelPrefixesDiagnostics) {
  config::Root root =
      config::Root::parse(R"({"rate": -1})", "serve", "bad.json");
  config::Section s = root.section();
  double rate = 5;
  s.read_number("rate", &rate, config::positive());
  EXPECT_FALSE(root.ok());
  EXPECT_EQ(root.error(), "bad.json: serve.rate: expected number > 0");
  EXPECT_EQ(rate, 5);  // failed read keeps the caller's default
}

TEST(ConfigRoot, LoadNamesMissingFile) {
  config::Root root =
      config::Root::load("/nonexistent/dir/x.json", "serve");
  EXPECT_FALSE(root.ok());
  EXPECT_EQ(root.error(), "/nonexistent/dir/x.json: cannot open file");
}

TEST(ConfigSection, AbsentReadersKeepDefaults) {
  config::Root root = config::Root::parse(R"({})", "serve");
  config::Section s = root.section();
  double num = 1.5;
  std::size_t size = 7;
  int i = -3;
  bool flag = true;
  std::string text = "keep";
  sim::Time t = 42;
  EXPECT_TRUE(s.read_number("a", &num));
  EXPECT_TRUE(s.read_size("b", &size));
  EXPECT_TRUE(s.read_int("c", &i));
  EXPECT_TRUE(s.read_bool("d", &flag));
  EXPECT_TRUE(s.read_string("e", &text));
  EXPECT_TRUE(s.read_time_ms("f", &t));
  EXPECT_EQ(num, 1.5);
  EXPECT_EQ(size, 7u);
  EXPECT_EQ(i, -3);
  EXPECT_TRUE(flag);
  EXPECT_EQ(text, "keep");
  EXPECT_EQ(t, 42);
  // An absent object's readers are no-ops too (straight-line loaders).
  config::Section missing = s.object("missing");
  EXPECT_FALSE(missing.present());
  EXPECT_TRUE(missing.read_number("x", &num));
  EXPECT_EQ(num, 1.5);
  EXPECT_TRUE(root.ok());
}

TEST(ConfigSection, NestedPathsInDiagnostics) {
  config::Root root = config::Root::parse(
      R"({"traffic": {"rates": [10, "fast"]}})", "serve");
  config::Section rates = root.section().object("traffic").array("rates");
  ASSERT_EQ(rates.array_size(), 2u);
  double v = 0;
  EXPECT_TRUE(rates.element(0).value_number(&v));
  EXPECT_EQ(v, 10);
  EXPECT_FALSE(rates.element(1).value_number(&v));
  EXPECT_EQ(root.error(), "serve.traffic.rates[1]: expected a number");
}

TEST(ConfigSection, FirstErrorWins) {
  config::Root root =
      config::Root::parse(R"({"a": "x", "b": "y"})", "serve");
  config::Section s = root.section();
  double a = 0, b = 0;
  s.read_number("a", &a);
  s.read_number("b", &b);
  EXPECT_EQ(root.error(), "serve.a: expected a number");
}

TEST(ConfigSection, RangesRender) {
  EXPECT_EQ(config::positive().describe(), "> 0");
  EXPECT_EQ(config::non_negative().describe(), ">= 0");
  EXPECT_EQ(config::unit_interval().describe(), "in [0, 1]");
  EXPECT_EQ(config::open_unit().describe(), "in (0, 1)");

  config::Root root = config::Root::parse(R"({"p": 1.5})", "slo");
  double p = 0;
  root.section().read_number("p", &p, config::unit_interval());
  EXPECT_EQ(root.error(), "slo.p: expected number in [0, 1]");
}

TEST(ConfigSection, TypeMismatchesName) {
  config::Root root = config::Root::parse(
      R"({"obj": 3, "arr": {"k": 1}, "str": 9})", "serve");
  config::Section s = root.section();
  s.object("obj");
  EXPECT_EQ(root.error(), "serve.obj: expected an object");
}

TEST(ConfigSection, RequiredReaders) {
  config::Root root = config::Root::parse(R"({"name": ""})", "slo");
  std::string name;
  root.section().require_string("name", &name);
  EXPECT_EQ(root.error(), "slo.name: expected a non-empty string");

  config::Root root2 = config::Root::parse(R"({})", "slo");
  root2.section().require_array("rules");
  EXPECT_EQ(root2.error(), "slo.rules: missing required array");

  config::Root root3 = config::Root::parse(R"({})", "slo");
  double v = 0;
  root3.section().require_number("threshold", &v);
  EXPECT_EQ(root3.error(), "slo.threshold: missing required number");
}

TEST(ConfigSection, EnumListsAcceptedSpellings) {
  enum class Color { kRed, kBlue };
  config::Root root = config::Root::parse(R"({"color": "green"})", "serve");
  Color c = Color::kRed;
  root.section().read_enum<Color>(
      "color", &c, {{"red", Color::kRed}, {"blue", Color::kBlue}});
  EXPECT_EQ(root.error(),
            "serve.color: unknown value \"green\" (red | blue)");
}

TEST(ConfigSection, BoolAcceptsNumbersForBackCompat) {
  config::Root root =
      config::Root::parse(R"({"a": true, "b": 0, "c": 1})", "serve");
  config::Section s = root.section();
  bool a = false, b = true, c = false;
  EXPECT_TRUE(s.read_bool("a", &a));
  EXPECT_TRUE(s.read_bool("b", &b));
  EXPECT_TRUE(s.read_bool("c", &c));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(ConfigSection, TimeReadersConvertUnits) {
  config::Root root =
      config::Root::parse(R"({"ms": 2.5, "us": 150})", "serve");
  sim::Time ms = 0, us = 0;
  root.section().read_time_ms("ms", &ms);
  root.section().read_time_us("us", &us);
  EXPECT_EQ(ms, static_cast<sim::Time>(2.5 * sim::kMillisecond));
  EXPECT_EQ(us, 150 * sim::kMicrosecond);
}

// --- migrated-loader diagnostics -------------------------------------------
// The serve / slo / faults loaders all ride the facility now; pin the
// file+path shape of their messages so regressions in any one loader's
// wiring show up as a text diff here.

TEST(MigratedLoaders, ServeDiagnosticNamesPath) {
  std::string error;
  auto options = serve::parse_serve_scenario(
      R"({"traffic": {"rate_tps": -5}})", &error);
  EXPECT_FALSE(options.has_value());
  EXPECT_EQ(error, "serve.traffic.rate_tps: expected number > 0");
}

TEST(MigratedLoaders, SloDiagnosticNamesRuleIndex) {
  std::string error;
  auto config = obs::parse_slo_config(
      R"({"rules": [{"name": "r", "metric": "m", "kind": "bogus"}]})",
      &error);
  EXPECT_FALSE(config.has_value());
  EXPECT_EQ(error,
            "slo.rules[0].kind: unknown value \"bogus\" (ratio | rate_above "
            "| gauge_above | gauge_below | latency_quantile)");
}

TEST(MigratedLoaders, FaultsDiagnosticNamesDirection) {
  std::string error;
  auto scenario = net::parse_fault_scenario(
      R"({"data": {"loss": {"good": 2.0}}})", &error);
  EXPECT_FALSE(scenario.has_value());
  EXPECT_EQ(error, "faults.data.loss.good: expected number in [0, 1]");
}

TEST(MigratedLoaders, ScenarioDiagnosticNamesSection) {
  std::string error;
  auto scenario = serve::parse_scenario(
      R"({"serve": {"duration_ms": 0}})", &error);
  EXPECT_FALSE(scenario.has_value());
  EXPECT_EQ(error, "scenario.serve.duration_ms: expected number > 0");
}

TEST(Scenario, ComposesSections) {
  std::string error;
  auto scenario = serve::parse_scenario(R"({
    "name": "combo",
    "serve": {
      "duration_ms": 500,
      "traffic": {"rate_tps": 1200},
      "sessions": {"enabled": true, "rate_classes": 2}
    },
    "sessions": {"rate_classes": 4, "population": 99},
    "durability": {"ledger_path": "x.log"},
    "slo": {"rules": [{"name": "r", "kind": "gauge_above",
                       "metric": "m", "threshold": 3, "windows_ms": [10]}]},
    "faults": {"seed": 9, "data": {"loss": {"good": 0.25}}}
  })",
                                        &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->name, "combo");
  EXPECT_EQ(scenario->serve.name, "combo");
  EXPECT_EQ(scenario->serve.duration, 500 * sim::kMillisecond);
  EXPECT_EQ(scenario->serve.traffic.rate_tps, 1200);
  // Top-level "sessions" overrides the serve-nested section...
  EXPECT_TRUE(scenario->serve.sessions.enabled);
  EXPECT_EQ(scenario->serve.sessions.rate_classes, 4);
  EXPECT_EQ(scenario->serve.sessions.population, 99u);
  // ...and the admission class count is re-synced to cover every class.
  EXPECT_GE(scenario->serve.admission.classes, 4);
  EXPECT_EQ(scenario->serve.network.durability.ledger_path, "x.log");
  ASSERT_TRUE(scenario->slo.has_value());
  ASSERT_EQ(scenario->slo->rules.size(), 1u);
  EXPECT_EQ(scenario->slo->rules[0].name, "r");
  ASSERT_TRUE(scenario->faults.has_value());
  EXPECT_EQ(scenario->faults->data.loss_good, 0.25);
  EXPECT_EQ(scenario->faults->data.seed, 9u);
  // The ack direction is decorrelated from the same top-level seed.
  EXPECT_EQ(scenario->faults->ack.seed, 9u ^ 0x9E3779B97F4A7C15ull);
}

TEST(Scenario, SectionsAreOptional) {
  std::string error;
  auto scenario = serve::parse_scenario(R"({"name": "bare"})", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_FALSE(scenario->slo.has_value());
  EXPECT_FALSE(scenario->faults.has_value());
  EXPECT_FALSE(scenario->serve.sessions.enabled);
}

TEST(Scenario, ShippedScenarioConfigsLoad) {
  for (const char* name :
       {"/configs/scenario_steady.json", "/configs/scenario_burst.json"}) {
    std::string error;
    auto scenario =
        serve::load_scenario(std::string(BM_REPO_ROOT) + name, &error);
    ASSERT_TRUE(scenario.has_value()) << name << ": " << error;
    EXPECT_TRUE(scenario->serve.sessions.enabled) << name;
    ASSERT_TRUE(scenario->slo.has_value()) << name;
    EXPECT_FALSE(scenario->slo->rules.empty()) << name;
  }
}

TEST(Scenario, ClusterSectionParses) {
  std::string error;
  auto scenario = serve::parse_scenario(R"({
    "name": "cluster-combo",
    "cluster": {
      "orgs": 3,
      "peers_per_org": 2,
      "orderers": 5,
      "block_size": 16,
      "seed": 42,
      "submit_interval_ms": 4,
      "raft": {"election_timeout_min_ms": 100, "election_timeout_max_ms": 250,
               "heartbeat_ms": 40, "message_loss": 0.01},
      "gossip": {"fanout": 3, "gbps": 2.5, "anti_entropy_ms": 25,
                 "loss": 0.1},
      "snapshot_interval": 8,
      "catch_up_threshold": 6,
      "transfer_gbps": 10,
      "transfer_rtt_ms": 2
    }
  })",
                                        &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  ASSERT_TRUE(scenario->cluster.has_value());
  const cluster::ClusterConfig& c = *scenario->cluster;
  EXPECT_EQ(c.orgs, 3);
  EXPECT_EQ(c.peers_per_org, 2);
  EXPECT_EQ(c.orderers, 5);
  EXPECT_EQ(c.block_size, 16u);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_EQ(c.submit_interval, 4 * sim::kMillisecond);
  EXPECT_EQ(c.ordering.raft.election_timeout_min, 100 * sim::kMillisecond);
  EXPECT_EQ(c.ordering.raft.election_timeout_max, 250 * sim::kMillisecond);
  EXPECT_EQ(c.ordering.raft.heartbeat_interval, 40 * sim::kMillisecond);
  EXPECT_EQ(c.ordering.message_loss, 0.01);
  EXPECT_EQ(c.gossip.fanout, 3);
  EXPECT_EQ(c.gossip.gbps, 2.5);
  EXPECT_EQ(c.gossip.anti_entropy_interval, 25 * sim::kMillisecond);
  // gossip.loss > 0 arms a uniform-loss fault schedule on its own stream,
  // decorrelated from the topology seed.
  EXPECT_TRUE(c.gossip.faults.any());
  EXPECT_EQ(c.gossip.faults.loss_good, 0.1);
  EXPECT_EQ(c.gossip.faults.seed, 42u ^ 0xC0551Full);
  EXPECT_EQ(c.snapshot_interval, 8u);
  EXPECT_EQ(c.catch_up_threshold, 6u);
  EXPECT_EQ(c.transfer_gbps, 10.0);
  EXPECT_EQ(c.transfer_rtt, 2 * sim::kMillisecond);
  EXPECT_EQ(c.peer_count(), 6);
}

TEST(Scenario, ClusterSectionIsOptional) {
  std::string error;
  auto scenario = serve::parse_scenario(R"({"name": "bare"})", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_FALSE(scenario->cluster.has_value());
}

TEST(Scenario, ClusterDiagnosticsNameTheKeyPath) {
  struct Case {
    const char* json;
    const char* diagnostic;
  };
  const Case cases[] = {
      {R"({"cluster": {"orgs": 0}})",
       "scenario.cluster.orgs: expected number >= 1"},
      {R"({"cluster": {"block_size": -1}})",
       "scenario.cluster.block_size: expected number > 0"},
      {R"({"cluster": {"gossip": {"fanout": 0}}})",
       "scenario.cluster.gossip.fanout: expected number >= 1"},
      {R"({"cluster": {"gossip": {"loss": 1.5}}})",
       "scenario.cluster.gossip.loss: expected number in [0, 1]"},
      {R"({"cluster": {"raft": {"election_timeout_min_ms": 300,
                                "election_timeout_max_ms": 200}}})",
       "scenario.cluster.raft.election_timeout_max_ms: "
       "must be >= election_timeout_min_ms"},
      {R"({"cluster": {"catch_up_threshold": 0}})",
       "scenario.cluster.catch_up_threshold: expected number >= 1"},
      {R"({"cluster": []})", "scenario.cluster: expected an object"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto scenario = serve::parse_scenario(c.json, &error);
    EXPECT_FALSE(scenario.has_value()) << c.json;
    EXPECT_EQ(error, c.diagnostic) << c.json;
  }
}

TEST(Scenario, ShippedClusterScenarioLoads) {
  std::string error;
  auto scenario = serve::load_scenario(
      std::string(BM_REPO_ROOT) + "/configs/scenario_cluster.json", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  ASSERT_TRUE(scenario->cluster.has_value());
  EXPECT_EQ(scenario->cluster->orgs, 2);
  EXPECT_EQ(scenario->cluster->peers_per_org, 2);
  EXPECT_EQ(scenario->cluster->orderers, 3);
  EXPECT_TRUE(scenario->cluster->gossip.faults.any());
  EXPECT_TRUE(scenario->cluster->data_dir.empty())
      << "shipped config must stay path-portable";
}

}  // namespace

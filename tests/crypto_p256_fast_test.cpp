// Differential and known-answer tests for the fast scalar-multiplication
// paths (wNAF, fixed-base comb, joint wNAF) against the retained naive
// double-and-add oracle, plus an RFC-6979 determinism pin proving the fast
// paths produce byte-identical signatures to the pre-optimization code.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/ecdsa.hpp"

namespace bm::crypto {
namespace {

AffinePoint affine(const JacobianPoint& p) { return to_affine(p); }

U256 random_scalar(Rng& rng) {
  return U256::from_bytes_be(rng.bytes(32));
}

TEST(P256Fast, WnafMatchesNaiveOnRandomScalars) {
  Rng rng(11);
  const AffinePoint q =
      key_from_seed(to_bytes("wnaf-point")).public_key().point;
  for (int i = 0; i < 30; ++i) {
    const U256 k = random_scalar(rng);
    EXPECT_EQ(affine(scalar_mult_wnaf(k, q)), affine(scalar_mult_naive(k, q)))
        << "iteration " << i;
  }
}

TEST(P256Fast, CombMatchesNaiveOnRandomScalars) {
  Rng rng(12);
  const AffinePoint& g = p256_generator();
  for (int i = 0; i < 30; ++i) {
    const U256 k = random_scalar(rng);
    EXPECT_EQ(affine(base_mult(k)), affine(scalar_mult_naive(k, g)))
        << "iteration " << i;
  }
}

TEST(P256Fast, JointWnafMatchesNaiveOnRandomScalars) {
  Rng rng(13);
  const AffinePoint q =
      key_from_seed(to_bytes("joint-point")).public_key().point;
  for (int i = 0; i < 30; ++i) {
    const U256 u1 = random_scalar(rng);
    const U256 u2 = random_scalar(rng);
    const JacobianPoint expected = point_add(
        scalar_mult_naive(u1, p256_generator()), scalar_mult_naive(u2, q));
    EXPECT_EQ(affine(double_scalar_mult(u1, u2, q)), affine(expected))
        << "iteration " << i;
  }
}

TEST(P256Fast, EdgeScalars) {
  const AffinePoint q = key_from_seed(to_bytes("edge")).public_key().point;
  U256 n_minus_1 = p256_n();
  sub(n_minus_1, n_minus_1, U256::from_u64(1));
  U256 n_plus_1 = p256_n();
  add(n_plus_1, n_plus_1, U256::from_u64(1));
  U256 all_ones;
  all_ones.w.fill(~std::uint64_t{0});
  const U256 edges[] = {U256{},           U256::from_u64(1),
                        U256::from_u64(2), U256::from_u64(3),
                        n_minus_1,         p256_n(),
                        n_plus_1,          all_ones};
  for (const U256& k : edges) {
    EXPECT_EQ(affine(scalar_mult_wnaf(k, q)), affine(scalar_mult_naive(k, q)));
    EXPECT_EQ(affine(base_mult(k)),
              affine(scalar_mult_naive(k, p256_generator())));
  }
  // k = 0 and k = n land on the point at infinity.
  EXPECT_TRUE(base_mult(U256{}).is_infinity());
  EXPECT_TRUE(base_mult(p256_n()).is_infinity());
  EXPECT_TRUE(scalar_mult_wnaf(p256_n(), q).is_infinity());
  // Infinity base stays at infinity.
  EXPECT_TRUE(
      scalar_mult(U256::from_u64(7), AffinePoint{{}, {}, true}).is_infinity());
}

TEST(P256Fast, JointWnafEdgeScalars) {
  const AffinePoint q = key_from_seed(to_bytes("jedge")).public_key().point;
  const U256 k = U256::from_u64(0x1234567);
  // u1 = 0: pure Q component; u2 = 0: pure G component; both 0: infinity.
  EXPECT_EQ(affine(double_scalar_mult(U256{}, k, q)),
            affine(scalar_mult_naive(k, q)));
  EXPECT_EQ(affine(double_scalar_mult(k, U256{}, q)),
            affine(scalar_mult_naive(k, p256_generator())));
  EXPECT_TRUE(double_scalar_mult(U256{}, U256{}, q).is_infinity());
  // u1*G + u2*Q with u2*Q = -u1*G cancels to infinity: pick Q = G.
  U256 n_minus_1 = p256_n();
  sub(n_minus_1, n_minus_1, U256::from_u64(1));
  EXPECT_TRUE(
      double_scalar_mult(U256::from_u64(1), n_minus_1, p256_generator())
          .is_infinity());
}

// Known multiples of G (SEC/NIST point-multiplication vectors).
TEST(P256Fast, KnownGeneratorMultiples) {
  struct Vector {
    std::uint64_t k;
    const char* x;
    const char* y;
  };
  const Vector vectors[] = {
      {1, "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
       "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"},
      {2, "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
       "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"},
      {3, "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
       "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032"},
      {4, "e2534a3532d08fbba02dde659ee62bd0031fe2db785596ef509302446b030852",
       "e0f1575a4c633cc719dfee5fda862d764efc96c3f30ee0055c42c23f184ed8c6"},
  };
  for (const Vector& v : vectors) {
    const U256 k = U256::from_u64(v.k);
    const AffinePoint expected{U256::from_hex(v.x), U256::from_hex(v.y),
                               false};
    EXPECT_EQ(affine(base_mult(k)), expected) << "k = " << v.k;
    EXPECT_EQ(affine(scalar_mult_wnaf(k, p256_generator())), expected)
        << "k = " << v.k;
    EXPECT_EQ(affine(scalar_mult_naive(k, p256_generator())), expected)
        << "k = " << v.k;
  }
}

TEST(P256Fast, BatchToAffineMatchesSingle) {
  Rng rng(14);
  std::vector<JacobianPoint> pts;
  const AffinePoint q = key_from_seed(to_bytes("batch")).public_key().point;
  for (int i = 0; i < 9; ++i)
    pts.push_back(scalar_mult_naive(random_scalar(rng), q));
  pts.push_back(JacobianPoint{});  // infinity passes through
  pts.insert(pts.begin(), JacobianPoint{});
  const std::vector<AffinePoint> batch = batch_to_affine(pts);
  ASSERT_EQ(batch.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(batch[i], to_affine(pts[i])) << "index " << i;
}

TEST(P256Fast, MixedAdditionMatchesGeneral) {
  Rng rng(15);
  const AffinePoint base = key_from_seed(to_bytes("mixed")).public_key().point;
  for (int i = 0; i < 10; ++i) {
    const JacobianPoint p = scalar_mult_naive(random_scalar(rng), base);
    const AffinePoint q =
        to_affine(scalar_mult_naive(random_scalar(rng), base));
    EXPECT_EQ(affine(point_add_affine(p, q)),
              affine(point_add(p, to_jacobian(q))));
  }
  // Edge cases: infinity operands, doubling, cancellation.
  const JacobianPoint p = scalar_mult_naive(U256::from_u64(5), base);
  const AffinePoint pa = to_affine(p);
  EXPECT_EQ(affine(point_add_affine(JacobianPoint{}, pa)), pa);
  EXPECT_EQ(affine(point_add_affine(p, AffinePoint{{}, {}, true})), pa);
  EXPECT_EQ(affine(point_add_affine(p, pa)), affine(point_double(p)));
  AffinePoint neg = pa;
  neg.y = sub_mod(U256{}, neg.y, p256_p());
  EXPECT_TRUE(point_add_affine(p, neg).is_infinity());
}

// Signatures produced by the pre-optimization (naive double-and-add)
// implementation. The fast comb/wNAF paths must reproduce them bit for bit:
// RFC 6979 nonces plus identical group arithmetic leave no room for drift.
TEST(P256Fast, SignaturesByteIdenticalToNaiveImplementation) {
  const char* expected[][2] = {
      {"1df50670acf60a1fc9db52dc94c278cc4f8964e755825bd0782a494f1ad2c639",
       "b0f1bf92d04317ba071382c652f92082a8f96702ec738e924e3777901ef395c3"},
      {"a50e27c4053f062bed49613b27a5b5e55e5ee8cb9e754697a4e565ef2b69c3ba",
       "fcec8652ac3279795dca69fdaec905d699b1e696acfa5360bb80d83ecb743851"},
      {"144dafcab41f9e14a155fc717a546b9a61571aa9acb81e60a8ca559569379db8",
       "9bc7a4c691544b1d0de9ba0cc1bf7ba3925f7eb342ad70ce7dba059b79e49504"},
      {"1e58febe9eebab3a8c767b418f634b1a1294165f09141e3151f25f3f03f72c1a",
       "dce16d5c8b4fcc900089595e22d19e9e281ab6b8103d4f1225393f606fcb7ffc"},
  };
  for (int i = 0; i < 4; ++i) {
    const PrivateKey key = key_from_seed(to_bytes("detvec-" + std::to_string(i)));
    const Digest d = sha256(to_bytes("determinism-msg-" + std::to_string(i)));
    const Signature sig = sign(key, d);
    EXPECT_EQ(hex_encode(sig.r.to_bytes_be()), expected[i][0]) << "msg " << i;
    EXPECT_EQ(hex_encode(sig.s.to_bytes_be()), expected[i][1]) << "msg " << i;
    EXPECT_TRUE(verify(key.public_key(), d, sig));
  }
}

}  // namespace
}  // namespace bm::crypto

// SLO burn-rate monitor + flight recorder (src/obs/slo.hpp,
// src/obs/flight.hpp): rule parsing, windowed alerting on simulated time,
// ring eviction, dump-on-trigger, and the end-to-end promises the runbook
// makes (docs/OBSERVABILITY.md): alerts on injected degradation, silence
// on a clean run, and a telemetry-blind pipeline (same report either way).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "net/faults.hpp"
#include "obs/flight.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "serve/pipeline.hpp"
#include "workload/chaos.hpp"

namespace bm::obs {
namespace {

// --- rule parsing -------------------------------------------------------

TEST(SloConfigParse, AcceptsTheShippedRuleShapes) {
  std::string error;
  const auto config = parse_slo_config(R"({
    "name": "t", "evaluation_interval_ms": 5,
    "rules": [
      {"name": "r1", "kind": "ratio", "metric": "bad", "denominator": "all",
       "objective": 0.05, "burn_rate": 2.0, "min_count": 10,
       "windows_ms": [25, 250]},
      {"name": "r2", "kind": "rate_above", "metric": "c", "threshold": 1,
       "windows_ms": [100]},
      {"name": "r3", "kind": "latency_quantile", "metric": "h",
       "quantile": 0.9, "threshold": 50, "windows_ms": [100]}
    ]})", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->rules.size(), 3u);
  EXPECT_EQ(config->evaluation_interval, 5 * sim::kMillisecond);
  EXPECT_EQ(config->rules[0].kind, SloRuleKind::kRatio);
  EXPECT_DOUBLE_EQ(config->rules[0].threshold, 0.05);
  EXPECT_EQ(config->rules[0].windows.back(), 250 * sim::kMillisecond);
}

TEST(SloConfigParse, RejectsMalformedRulesLoudly) {
  std::string error;
  EXPECT_FALSE(parse_slo_config(
      R"({"rules": [{"name": "r", "kind": "nope", "metric": "m",
           "windows_ms": [10]}]})", &error));
  EXPECT_NE(error.find("kind"), std::string::npos);
  // ratio without a denominator
  EXPECT_FALSE(parse_slo_config(
      R"({"rules": [{"name": "r", "kind": "ratio", "metric": "m",
           "objective": 0.1, "windows_ms": [10]}]})", &error));
  // no windows
  EXPECT_FALSE(parse_slo_config(
      R"({"rules": [{"name": "r", "kind": "rate_above", "metric": "m",
           "threshold": 1, "windows_ms": []}]})", &error));
}

// --- monitor semantics --------------------------------------------------

SloConfig one_rule(SloRule rule, sim::Time interval = 5 * sim::kMillisecond) {
  SloConfig config;
  config.evaluation_interval = interval;
  config.rules.push_back(std::move(rule));
  return config;
}

TEST(SloMonitor, RatioRuleFiresOnBurstAndClearsAfter) {
  sim::Simulation sim;
  Registry registry;
  Counter& bad = registry.counter("bad_total", "test");
  Counter& all = registry.counter("all_total", "test");

  SloRule rule;
  rule.name = "burn";
  rule.kind = SloRuleKind::kRatio;
  rule.metric = "bad_total";
  rule.denominator = "all_total";
  rule.threshold = 0.05;  // 5% objective
  rule.burn_rate = 2.0;   // fire at a 10% bad fraction
  rule.min_count = 5;
  rule.windows = {10 * sim::kMillisecond, 50 * sim::kMillisecond};
  SloMonitor monitor(sim, registry, one_rule(rule));
  monitor.start();

  // Healthy for 50 ms (2% bad), a 40 ms burst at 50% bad, healthy again.
  for (int t = 1; t <= 200; ++t)
    sim.schedule(static_cast<sim::Time>(t) * sim::kMillisecond, [&, t] {
      const bool burst = t > 50 && t <= 90;
      all.inc(50);
      bad.inc(burst ? 25 : 1);
    });
  sim.run_until(200 * sim::kMillisecond);
  monitor.stop();

  ASSERT_TRUE(monitor.first_fire("burn").has_value());
  // Detection bounded by the long window + one evaluation tick.
  EXPECT_GT(*monitor.first_fire("burn"), 50 * sim::kMillisecond);
  EXPECT_LE(*monitor.first_fire("burn"), 105 * sim::kMillisecond);
  EXPECT_GE(monitor.fires(), 1u);
  EXPECT_EQ(monitor.fires(), monitor.clears());  // burst ended: all cleared
  EXPECT_EQ(monitor.active(), 0u);
  // The alert counters it publishes back into the registry agree.
  EXPECT_EQ(registry.counter("slo_alerts_fired_total", "").value(),
            monitor.fires());
  EXPECT_EQ(registry.counter("slo_alert_burn_fired_total", "").value(),
            monitor.fires());
}

TEST(SloMonitor, CleanRunStaysSilent) {
  sim::Simulation sim;
  Registry registry;
  Counter& bad = registry.counter("bad_total", "test");
  Counter& all = registry.counter("all_total", "test");
  SloRule rule;
  rule.name = "burn";
  rule.kind = SloRuleKind::kRatio;
  rule.metric = "bad_total";
  rule.denominator = "all_total";
  rule.threshold = 0.05;
  rule.burn_rate = 2.0;
  rule.windows = {10 * sim::kMillisecond};
  SloMonitor monitor(sim, registry, one_rule(rule));
  monitor.start();
  for (int t = 1; t <= 100; ++t)
    sim.schedule(static_cast<sim::Time>(t) * sim::kMillisecond, [&] {
      all.inc(50);
      bad.inc(1);  // 2%: within the objective
    });
  sim.run_until(100 * sim::kMillisecond);
  monitor.stop();
  EXPECT_EQ(monitor.fires(), 0u);
  EXPECT_FALSE(monitor.first_fire().has_value());
}

TEST(SloMonitor, GaugeRuleRequiresTheWholeWindowAboveThreshold) {
  sim::Simulation sim;
  Registry registry;
  Gauge& depth = registry.gauge("depth", "test");
  SloRule rule;
  rule.name = "sustained";
  rule.kind = SloRuleKind::kGaugeAbove;
  rule.metric = "depth";
  rule.threshold = 10;
  rule.windows = {20 * sim::kMillisecond};
  SloMonitor monitor(sim, registry, one_rule(rule));
  monitor.start();
  // A 10 ms blip above threshold must NOT fire (window is 20 ms)...
  sim.schedule(10 * sim::kMillisecond, [&] { depth.set(50); });
  sim.schedule(20 * sim::kMillisecond, [&] { depth.set(0); });
  // ...but a 40 ms plateau from 50 ms on must.
  sim.schedule(50 * sim::kMillisecond, [&] { depth.set(50); });
  sim.schedule(90 * sim::kMillisecond, [&] { depth.set(0); });
  sim.run_until(120 * sim::kMillisecond);
  monitor.stop();
  ASSERT_TRUE(monitor.first_fire("sustained").has_value());
  EXPECT_GE(*monitor.first_fire("sustained"), 70 * sim::kMillisecond);
  EXPECT_EQ(monitor.fires(), 1u);
  EXPECT_EQ(monitor.clears(), 1u);
}

// --- flight recorder ----------------------------------------------------

TEST(FlightRecorder, RingEvictsOldestFirst) {
  sim::Simulation sim;
  FlightConfig config;
  config.capacity = 4;
  FlightRecorder flight(sim, config);
  for (std::uint64_t id = 0; id < 6; ++id)
    flight.record(FlightStage::kAdmitted, id);

  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.recorded(), 6u);
  EXPECT_EQ(flight.dropped(), 2u);
  const auto events = flight.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(events[i].id, i + 2);  // 0 and 1 evicted; oldest-first order
}

TEST(FlightRecorder, FirstTriggerWinsAndWritesTheDump) {
  const std::string path = ::testing::TempDir() + "flight_dump.json";
  sim::Simulation sim;
  FlightRecorder flight(sim);
  flight.arm(path);
  sim.schedule(3 * sim::kMillisecond,
               [&] { flight.record(FlightStage::kWatchdog, 7, "stall"); });
  sim.schedule(4 * sim::kMillisecond, [&] {
    EXPECT_TRUE(flight.trigger("slo:burn"));
    EXPECT_FALSE(flight.trigger("later"));  // counted, not dumped
  });
  sim.run_until(5 * sim::kMillisecond);

  EXPECT_TRUE(flight.triggered());
  EXPECT_EQ(flight.trigger_count(), 2u);
  EXPECT_EQ(flight.trigger_reason(), "slo:burn");
  EXPECT_EQ(flight.trigger_at(), 4 * sim::kMillisecond);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream dump;
  dump << in.rdbuf();
  EXPECT_NE(dump.str().find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(dump.str().find("\"reason\": \"slo:burn\""), std::string::npos);
  EXPECT_NE(dump.str().find("\"stage\": \"watchdog\""), std::string::npos);
  EXPECT_NE(dump.str().find("\"note\": \"stall\""), std::string::npos);
  std::remove(path.c_str());
}

// --- end to end ---------------------------------------------------------

SloConfig watchdog_rule() {
  SloRule rule;
  rule.name = "watchdog_activity";
  rule.kind = SloRuleKind::kRateAbove;
  rule.metric = "bmac_watchdog_fires_total";
  rule.threshold = 0.5;
  rule.windows = {100 * sim::kMillisecond};
  return one_rule(std::move(rule));
}

workload::ChaosOptions chaos_options(bool partitioned) {
  workload::ChaosOptions options;
  if (partitioned) {
    std::string error;
    const auto scenario = net::parse_fault_scenario(R"({
      "name": "partition", "seed": 4004,
      "data": {"partitions_ms": [[60, 240]]},
      "ack": {"partitions_ms": [[60, 240]]}
    })", &error);
    EXPECT_TRUE(scenario.has_value()) << error;
    options.scenario = *scenario;
  }
  return options;
}

TEST(TelemetryEndToEnd, ChaosDegradationFiresAlertAndDumpsFlight) {
  Registry registry;
  Telemetry telemetry;
  TimeSeriesConfig sampler;
  sampler.interval = 5 * sim::kMillisecond;
  telemetry.configure(sampler, watchdog_rule());
  const workload::ChaosReport report = workload::run_chaos_scenario(
      chaos_options(/*partitioned=*/true), &registry, nullptr, &telemetry);

  EXPECT_TRUE(report.hashes_match);
  ASSERT_TRUE(telemetry.slo()->first_fire("watchdog_activity").has_value());
  // The peer trips the flight recorder at the watchdog itself, before the
  // monitor's evaluation tick can.
  EXPECT_TRUE(telemetry.flight()->triggered());
  EXPECT_NE(telemetry.flight()->trigger_reason().find("bmac:watchdog"),
            std::string::npos);
  EXPECT_LE(telemetry.flight()->trigger_at(),
            *telemetry.slo()->first_fire("watchdog_activity"));
}

TEST(TelemetryEndToEnd, CleanChaosRunFiresNothing) {
  Registry registry;
  Telemetry telemetry;
  TimeSeriesConfig sampler;
  sampler.interval = 5 * sim::kMillisecond;
  telemetry.configure(sampler, watchdog_rule());
  const workload::ChaosReport report = workload::run_chaos_scenario(
      chaos_options(/*partitioned=*/false), &registry, nullptr, &telemetry);

  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.hashes_match);
  EXPECT_EQ(telemetry.slo()->fires(), 0u);
  EXPECT_FALSE(telemetry.flight()->triggered());
  // The sampler still ran: watchdog column exists and stays at zero.
  for (const double v :
       telemetry.sampler()->values("bmac_watchdog_fires_total"))
    EXPECT_EQ(v, 0);
}

TEST(TelemetryEndToEnd, ServeReportIsIdenticalWithAndWithoutTelemetry) {
  serve::ServeOptions options;
  options.name = "blind";
  options.network.seed = 11;
  options.traffic.seed = 11 ^ 0x9E3779B97F4A7C15ull;
  options.traffic.rate_tps = 1500;
  options.duration = 150 * sim::kMillisecond;
  options.endorse.workers = 2;
  options.endorse.service_base = sim::kMillisecond;
  options.endorse.per_endorsement = 0;

  const serve::ServeReport plain = serve::run_serve(options);

  Registry registry;
  Telemetry telemetry;
  TimeSeriesConfig sampler;
  sampler.interval = 5 * sim::kMillisecond;
  SloRule rule;
  rule.name = "shed_burn";
  rule.kind = SloRuleKind::kRatio;
  rule.metric = "serve_admission_shed_total";
  rule.denominator = "serve_admission_offered_total";
  rule.threshold = 0.05;
  rule.burn_rate = 2.0;
  rule.min_count = 20;
  rule.windows = {25 * sim::kMillisecond};
  telemetry.configure(sampler, one_rule(std::move(rule)));
  const serve::ServeReport observed =
      serve::run_serve(options, &registry, nullptr, &telemetry);

  // Telemetry must be read-only with respect to the pipeline.
  EXPECT_EQ(plain.offered, observed.offered);
  EXPECT_EQ(plain.admitted, observed.admitted);
  EXPECT_EQ(plain.shed_total(), observed.shed_total());
  EXPECT_EQ(plain.timed_out, observed.timed_out);
  EXPECT_EQ(plain.committed_txs, observed.committed_txs);
  EXPECT_EQ(plain.valid_txs, observed.valid_txs);
  EXPECT_DOUBLE_EQ(plain.goodput_tps, observed.goodput_tps);
  EXPECT_DOUBLE_EQ(plain.total_ms.p99, observed.total_ms.p99);
  // And the sampler saw the run move: the admitted column is non-trivial.
  EXPECT_GT(telemetry.sampler()->sample_count(), 10u);
  EXPECT_EQ(telemetry.sampler()
                ->values("serve_admission_admitted_total")
                .back(),
            static_cast<double>(observed.admitted));
}

}  // namespace
}  // namespace bm::obs

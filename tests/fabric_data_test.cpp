#include <gtest/gtest.h>

#include "crypto/der.hpp"
#include "common/rng.hpp"
#include "fabric/ledger.hpp"
#include "fabric/orderer.hpp"
#include "fabric/statedb.hpp"
#include "fabric/transaction.hpp"

namespace bm::fabric {
namespace {

struct TestNet {
  TestNet() {
    org1 = &msp.add_org("Org1");
    org2 = &msp.add_org("Org2");
    client = org1->issue(Role::kClient, 0, "client0.org1");
    peer1 = org1->issue(Role::kPeer, 0, "peer0.org1");
    peer2 = org2->issue(Role::kPeer, 0, "peer0.org2");
    orderer_id = org1->issue(Role::kOrderer, 0, "orderer0.org1");
  }
  Msp msp;
  CertificateAuthority* org1;
  CertificateAuthority* org2;
  Identity client, peer1, peer2, orderer_id;
};

TxProposal sample_proposal(const std::string& tx_id) {
  TxProposal proposal;
  proposal.channel_id = "mychannel";
  proposal.chaincode_id = "smallbank";
  proposal.tx_id = tx_id;
  proposal.rwset.reads.push_back({"checking_1", Version{3, 2}});
  proposal.rwset.reads.push_back({"missing", std::nullopt});
  proposal.rwset.writes.push_back({"checking_1", to_bytes("990")});
  return proposal;
}

TEST(RwSet, MarshalRoundTrip) {
  ReadWriteSet rwset;
  rwset.reads.push_back({"a", Version{1, 2}});
  rwset.reads.push_back({"b", std::nullopt});
  rwset.writes.push_back({"c", to_bytes("value")});
  rwset.writes.push_back({"d", Bytes{}});
  const auto back = ReadWriteSet::unmarshal(rwset.marshal());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, rwset);
}

TEST(RwSet, EmptyRoundTrip) {
  const auto back = ReadWriteSet::unmarshal(ReadWriteSet{}.marshal());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->reads.empty());
  EXPECT_TRUE(back->writes.empty());
}

TEST(Transaction, BuildAndParse) {
  TestNet net;
  const Bytes envelope = build_envelope(sample_proposal("tx1"), net.client,
                                        {&net.peer1, &net.peer2});
  const auto parsed = parse_envelope(envelope);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->channel_id, "mychannel");
  EXPECT_EQ(parsed->chaincode_id, "smallbank");
  EXPECT_EQ(parsed->tx_id, "tx1");
  EXPECT_EQ(parsed->creator.subject_cn, "client0.org1");
  ASSERT_EQ(parsed->endorsements.size(), 2u);
  EXPECT_EQ(parsed->endorsements[0].cert.subject_cn, "peer0.org1");
  EXPECT_EQ(parsed->endorsements[1].cert.subject_cn, "peer0.org2");
  ASSERT_EQ(parsed->rwset.reads.size(), 2u);
  EXPECT_EQ(parsed->rwset.reads[0].key, "checking_1");
  EXPECT_EQ(parsed->rwset.reads[0].version, (Version{3, 2}));
  EXPECT_FALSE(parsed->rwset.reads[1].version.has_value());
}

TEST(Transaction, SignaturesVerify) {
  TestNet net;
  const Bytes envelope = build_envelope(sample_proposal("tx2"), net.client,
                                        {&net.peer1, &net.peer2});
  const auto tx = parse_envelope(envelope);
  ASSERT_TRUE(tx.has_value());

  const auto creator_sig = crypto::der_decode_signature(tx->signature);
  ASSERT_TRUE(creator_sig.has_value());
  EXPECT_TRUE(crypto::verify(tx->creator.public_key,
                             crypto::sha256(tx->payload_bytes), *creator_sig));

  for (const auto& endorsement : tx->endorsements) {
    const auto sig = crypto::der_decode_signature(endorsement.signature);
    ASSERT_TRUE(sig.has_value());
    const crypto::Digest digest = endorsement_digest(
        tx->chaincode_id, tx->rwset_bytes, endorsement.cert_bytes);
    EXPECT_TRUE(crypto::verify(endorsement.cert.public_key, digest, *sig));
  }
}

TEST(Transaction, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_envelope(to_bytes("garbage")).has_value());
  EXPECT_FALSE(parse_envelope(Bytes{}).has_value());
}

TEST(Transaction, IdentityBytesDominate) {
  // §3.2: at least 73% of block size is identity certificates (with 2
  // endorsements: 3 certificates per transaction).
  TestNet net;
  const Bytes envelope = build_envelope(sample_proposal("tx3"), net.client,
                                        {&net.peer1, &net.peer2});
  const std::size_t cert_bytes = net.client.cert.marshal().size() +
                                 net.peer1.cert.marshal().size() +
                                 net.peer2.cert.marshal().size();
  EXPECT_GT(static_cast<double>(cert_bytes) / envelope.size(), 0.6);
}

TEST(Block, MarshalRoundTrip) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 2});
  orderer.submit(build_envelope(sample_proposal("a"), net.client, {&net.peer1}));
  auto block =
      orderer.submit(build_envelope(sample_proposal("b"), net.client, {&net.peer1}));
  ASSERT_TRUE(block.has_value());

  const auto back = Block::unmarshal(block->marshal());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->header, block->header);
  EXPECT_EQ(back->envelopes.size(), 2u);
  EXPECT_TRUE(equal(back->envelopes[0], block->envelopes[0]));
  EXPECT_EQ(back->metadata, block->metadata);
  EXPECT_EQ(back->block_hash(), block->block_hash());
}

TEST(Orderer, CutsAtBatchSize) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 3});
  EXPECT_FALSE(orderer.submit(build_envelope(sample_proposal("1"), net.client,
                                             {&net.peer1})));
  EXPECT_FALSE(orderer.submit(build_envelope(sample_proposal("2"), net.client,
                                             {&net.peer1})));
  const auto block = orderer.submit(
      build_envelope(sample_proposal("3"), net.client, {&net.peer1}));
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->tx_count(), 3u);
  EXPECT_EQ(block->header.number, 0u);
  EXPECT_FALSE(orderer.flush().has_value());
}

TEST(Orderer, ChainsPrevHashes) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 1});
  const auto b0 = orderer.submit(
      build_envelope(sample_proposal("1"), net.client, {&net.peer1}));
  const auto b1 = orderer.submit(
      build_envelope(sample_proposal("2"), net.client, {&net.peer1}));
  ASSERT_TRUE(b0 && b1);
  EXPECT_TRUE(b0->header.prev_hash.empty());
  EXPECT_TRUE(equal(b1->header.prev_hash,
                    crypto::digest_view(b0->block_hash())));
  EXPECT_EQ(b1->header.number, 1u);
}

TEST(Orderer, SignsBlocks) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 1});
  const auto block = orderer.submit(
      build_envelope(sample_proposal("1"), net.client, {&net.peer1}));
  ASSERT_TRUE(block.has_value());
  const auto sig = crypto::der_decode_signature(block->metadata.orderer_sig);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(crypto::verify(net.orderer_id.cert.public_key,
                             block->signing_digest(), *sig));
  EXPECT_TRUE(equal(block->header.data_hash,
                    crypto::digest_view(block->compute_data_hash())));
}

TEST(Orderer, DataHashDetectsTampering) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 1});
  auto block = orderer.submit(
      build_envelope(sample_proposal("1"), net.client, {&net.peer1}));
  block->envelopes[0][10] ^= 1;
  EXPECT_FALSE(equal(block->header.data_hash,
                     crypto::digest_view(block->compute_data_hash())));
}

TEST(StateDb, VersionedReadsAndWrites) {
  StateDb db;
  EXPECT_FALSE(db.get("k").has_value());
  db.put("k", to_bytes("v1"), Version{1, 0});
  const auto v = db.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "v1");
  EXPECT_EQ(v->version, (Version{1, 0}));
  db.put("k", to_bytes("v2"), Version{2, 5});
  EXPECT_EQ(db.get("k")->version, (Version{2, 5}));
  EXPECT_EQ(db.size(), 1u);
}

TEST(StateDb, VersionMatching) {
  StateDb db;
  db.put("k", to_bytes("v"), Version{1, 0});
  EXPECT_TRUE(db.version_matches({"k", Version{1, 0}}));
  EXPECT_FALSE(db.version_matches({"k", Version{1, 1}}));
  EXPECT_FALSE(db.version_matches({"k", std::nullopt}));
  EXPECT_TRUE(db.version_matches({"absent", std::nullopt}));
  EXPECT_FALSE(db.version_matches({"absent", Version{0, 0}}));
}

TEST(StateDb, NamespacedKeysDontCollide) {
  EXPECT_NE(StateDb::namespaced("cc1", "key"), StateDb::namespaced("cc2", "key"));
  EXPECT_NE(StateDb::namespaced("a", "bc"), StateDb::namespaced("ab", "c"));
}

TEST(HistoryDb, RecordsWriters) {
  HistoryDb history;
  history.record("k", Version{1, 0});
  history.record("k", Version{2, 3});
  const auto* h = history.history("k");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->size(), 2u);
  EXPECT_EQ((*h)[1], (Version{2, 3}));
  EXPECT_EQ(history.history("absent"), nullptr);
}

TEST(Ledger, AppendsAndChainsCommitHashes) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 1});
  Ledger ledger;
  for (int i = 0; i < 3; ++i) {
    auto block = orderer.submit(build_envelope(
        sample_proposal(std::to_string(i)), net.client, {&net.peer1}));
    block->metadata.tx_flags = {0};
    ledger.append(std::move(*block));
  }
  EXPECT_EQ(ledger.height(), 3u);
  EXPECT_NE(ledger.at(0).commit_hash, ledger.at(1).commit_hash);
  EXPECT_EQ(ledger.last().commit_hash, ledger.at(2).commit_hash);
  EXPECT_GT(ledger.bytes_written(), 0u);
}

TEST(Ledger, RejectsBadAppends) {
  TestNet net;
  Orderer orderer(net.orderer_id, {.max_tx_per_block = 1});
  Ledger ledger;
  auto b0 = orderer.submit(
      build_envelope(sample_proposal("1"), net.client, {&net.peer1}));
  auto b1 = orderer.submit(
      build_envelope(sample_proposal("2"), net.client, {&net.peer1}));
  b0->metadata.tx_flags = {0};
  b1->metadata.tx_flags = {0};

  Block out_of_order = *b1;
  EXPECT_THROW(ledger.append(out_of_order), std::invalid_argument);

  Block missing_flags = *b0;
  missing_flags.metadata.tx_flags.clear();
  EXPECT_THROW(ledger.append(missing_flags), std::invalid_argument);

  ledger.append(std::move(*b0));
  Block bad_prev = *b1;
  bad_prev.header.prev_hash = Bytes(32, 0xAA);
  EXPECT_THROW(ledger.append(bad_prev), std::invalid_argument);
  EXPECT_THROW(ledger.at(5), std::out_of_range);
}

TEST(Ledger, IdenticalInputsGiveIdenticalCommitHashes) {
  // Two ledgers fed the same flagged blocks agree — the paper's cross-peer
  // consistency check (§4.1).
  TestNet net;
  auto make_chain = [&](Ledger& ledger) {
    Orderer orderer(net.orderer_id, {.max_tx_per_block = 2});
    orderer.submit(build_envelope(sample_proposal("a"), net.client, {&net.peer1}));
    auto block = orderer.submit(
        build_envelope(sample_proposal("b"), net.client, {&net.peer1}));
    block->metadata.tx_flags = {0, 11};
    ledger.append(std::move(*block));
  };
  Ledger l1, l2;
  make_chain(l1);
  make_chain(l2);
  EXPECT_EQ(l1.last().commit_hash, l2.last().commit_hash);
}

}  // namespace
}  // namespace bm::fabric

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/der.hpp"
#include "crypto/ecdsa.hpp"

namespace bm::crypto {
namespace {

// RFC 6979 A.2.5 key for NIST P-256.
const char* kRfcPrivate =
    "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721";

TEST(P256Curve, GeneratorOnCurve) {
  EXPECT_TRUE(on_curve(p256_generator()));
}

TEST(P256Curve, GeneratorOrder) {
  // n * G == infinity, (n-1) * G == -G.
  const JacobianPoint nG = scalar_mult(p256_n(), p256_generator());
  EXPECT_TRUE(nG.is_infinity());

  U256 n_minus_1 = p256_n();
  U256 one = U256::from_u64(1);
  sub(n_minus_1, n_minus_1, one);
  const AffinePoint neg_g = to_affine(scalar_mult(n_minus_1, p256_generator()));
  EXPECT_EQ(neg_g.x, p256_generator().x);
  EXPECT_EQ(fp_add(neg_g.y, p256_generator().y), U256{});  // y + (-y) = 0
}

TEST(P256Curve, AdditionLaws) {
  Rng rng(1);
  const PrivateKey k1 = key_from_seed(to_bytes("k1"));
  const PrivateKey k2 = key_from_seed(to_bytes("k2"));
  const JacobianPoint p = scalar_mult(k1.d, p256_generator());
  const JacobianPoint q = scalar_mult(k2.d, p256_generator());

  // Commutativity.
  EXPECT_EQ(to_affine(point_add(p, q)), to_affine(point_add(q, p)));
  // P + infinity = P.
  EXPECT_EQ(to_affine(point_add(p, JacobianPoint{})), to_affine(p));
  // P + P = double(P).
  EXPECT_EQ(to_affine(point_add(p, p)), to_affine(point_double(p)));
  // (k1 + k2) * G == k1*G + k2*G.
  const U256 sum = add_mod(k1.d, k2.d, p256_n());
  EXPECT_EQ(to_affine(scalar_mult(sum, p256_generator())),
            to_affine(point_add(p, q)));
}

TEST(P256Curve, DoubleScalarMatchesSeparate) {
  const PrivateKey key = key_from_seed(to_bytes("dsm"));
  const AffinePoint q = key.public_key().point;
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    const U256 u1 = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
    const U256 u2 = mod(U256::from_bytes_be(rng.bytes(32)), p256_n());
    const JacobianPoint combined = double_scalar_mult(u1, u2, q);
    const JacobianPoint separate = point_add(
        scalar_mult(u1, p256_generator()), scalar_mult(u2, q));
    EXPECT_EQ(to_affine(combined), to_affine(separate));
  }
}

TEST(Ecdsa, Rfc6979PublicKey) {
  const PrivateKey key{U256::from_hex(kRfcPrivate)};
  const PublicKey pub = key.public_key();
  EXPECT_EQ(hex_encode(pub.point.x.to_bytes_be()),
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");
  EXPECT_EQ(hex_encode(pub.point.y.to_bytes_be()),
            "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299");
}

TEST(Ecdsa, Rfc6979SampleVector) {
  const PrivateKey key{U256::from_hex(kRfcPrivate)};
  const Signature sig = sign(key, sha256(to_bytes("sample")));
  EXPECT_EQ(hex_encode(sig.r.to_bytes_be()),
            "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716");
  EXPECT_EQ(hex_encode(sig.s.to_bytes_be()),
            "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8");
}

TEST(Ecdsa, Rfc6979TestVector) {
  const PrivateKey key{U256::from_hex(kRfcPrivate)};
  const Signature sig = sign(key, sha256(to_bytes("test")));
  EXPECT_EQ(hex_encode(sig.r.to_bytes_be()),
            "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367");
  EXPECT_EQ(hex_encode(sig.s.to_bytes_be()),
            "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083");
}

class EcdsaRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EcdsaRoundTrip, SignVerify) {
  const int i = GetParam();
  const PrivateKey key =
      key_from_seed(to_bytes("roundtrip-" + std::to_string(i)));
  const PublicKey pub = key.public_key();
  EXPECT_TRUE(on_curve(pub.point));

  const Digest digest = sha256(to_bytes("message-" + std::to_string(i)));
  const Signature sig = sign(key, digest);
  EXPECT_TRUE(verify(pub, digest, sig));

  // Tampered message fails.
  EXPECT_FALSE(verify(pub, sha256(to_bytes("other")), sig));
  // Tampered signature fails.
  Signature bad = sig;
  bad.r = add_mod(bad.r, U256::from_u64(1), p256_n());
  EXPECT_FALSE(verify(pub, digest, bad));
  // Wrong key fails.
  const PublicKey other = key_from_seed(to_bytes("other-key")).public_key();
  EXPECT_FALSE(verify(other, digest, sig));
}

INSTANTIATE_TEST_SUITE_P(Keys, EcdsaRoundTrip, ::testing::Range(0, 10));

TEST(Ecdsa, RejectsDegenerateSignatures) {
  const PrivateKey key = key_from_seed(to_bytes("degenerate"));
  const Digest d = sha256(to_bytes("m"));
  EXPECT_FALSE(verify(key.public_key(), d, Signature{U256{}, U256::from_u64(1)}));
  EXPECT_FALSE(verify(key.public_key(), d, Signature{U256::from_u64(1), U256{}}));
  // r >= n rejected.
  EXPECT_FALSE(verify(key.public_key(), d, Signature{p256_n(), U256::from_u64(1)}));
}

TEST(Ecdsa, DeterministicSigning) {
  const PrivateKey key = key_from_seed(to_bytes("det"));
  const Digest d = sha256(to_bytes("same message"));
  EXPECT_EQ(sign(key, d), sign(key, d));
}

TEST(Ecdsa, KeyFromSeedInRange) {
  for (int i = 0; i < 20; ++i) {
    const PrivateKey key = key_from_seed(to_bytes("seed" + std::to_string(i)));
    EXPECT_FALSE(key.d.is_zero());
    EXPECT_LT(cmp(key.d, p256_n()), 0);
  }
}

TEST(PublicKey, EncodeDecodeRoundTrip) {
  const PublicKey pub = key_from_seed(to_bytes("enc")).public_key();
  const Bytes encoded = pub.encode();
  EXPECT_EQ(encoded.size(), 65u);
  EXPECT_EQ(encoded[0], 0x04);
  const auto decoded = PublicKey::decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, pub);
}

TEST(PublicKey, DecodeRejectsOffCurveAndMalformed) {
  const PublicKey pub = key_from_seed(to_bytes("bad")).public_key();
  Bytes encoded = pub.encode();
  encoded[40] ^= 0xFF;  // corrupt Y
  EXPECT_FALSE(PublicKey::decode(encoded).has_value());
  EXPECT_FALSE(PublicKey::decode(Bytes(64, 0)).has_value());
  Bytes wrong_prefix = pub.encode();
  wrong_prefix[0] = 0x02;
  EXPECT_FALSE(PublicKey::decode(wrong_prefix).has_value());
}

// --- DER --------------------------------------------------------------------

TEST(Der, RoundTripRandomSignatures) {
  for (int i = 0; i < 20; ++i) {
    const PrivateKey key = key_from_seed(to_bytes("der" + std::to_string(i)));
    const Signature sig = sign(key, sha256(to_bytes(std::to_string(i))));
    const auto decoded = der_decode_signature(der_encode_signature(sig));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, sig);
  }
}

TEST(Der, MinimalIntegerEncoding) {
  // Small r/s values encode minimally (no leading zeros).
  const Signature sig{U256::from_u64(1), U256::from_u64(0x80)};
  const Bytes der = der_encode_signature(sig);
  // SEQUENCE(0x30) len, INTEGER(02) 01 01, INTEGER(02) 02 00 80
  const Bytes expected = {0x30, 0x07, 0x02, 0x01, 0x01, 0x02, 0x02, 0x00, 0x80};
  EXPECT_TRUE(equal(der, expected));
}

TEST(Der, RejectsMalformedInputs) {
  const Signature sig{U256::from_u64(1234567), U256::from_u64(7654321)};
  const Bytes good = der_encode_signature(sig);

  EXPECT_FALSE(der_decode_signature(Bytes{}).has_value());
  Bytes wrong_tag = good;
  wrong_tag[0] = 0x31;
  EXPECT_FALSE(der_decode_signature(wrong_tag).has_value());
  Bytes truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(der_decode_signature(truncated).has_value());
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(der_decode_signature(trailing).has_value());
  // Non-minimal integer: 0x00 prefix on a small positive value.
  const Bytes non_minimal = {0x30, 0x08, 0x02, 0x02, 0x00, 0x01,
                             0x02, 0x02, 0x00, 0x80};
  EXPECT_FALSE(der_decode_signature(non_minimal).has_value());
  // Negative integer.
  const Bytes negative = {0x30, 0x06, 0x02, 0x01, 0x81, 0x02, 0x01, 0x01};
  EXPECT_FALSE(der_decode_signature(negative).has_value());
}

// --- Edge-case sweep ---------------------------------------------------------
// Audit battery over PublicKey::decode, der_decode_signature, and verify:
// truncated/oversized lengths, non-minimal forms, trailing bytes, degenerate
// r/s, and off-curve / infinity / out-of-field keys must all be rejected.

TEST(PublicKey, DecodeRejectsOutOfFieldCoordinates) {
  const PublicKey pub = key_from_seed(to_bytes("oof")).public_key();
  // X >= p.
  Bytes bad_x = pub.encode();
  const Bytes p_be = p256_p().to_bytes_be();
  std::copy(p_be.begin(), p_be.end(), bad_x.begin() + 1);
  EXPECT_FALSE(PublicKey::decode(bad_x).has_value());
  // Y >= p (use p itself, which would alias y = 0).
  Bytes bad_y = pub.encode();
  std::copy(p_be.begin(), p_be.end(), bad_y.begin() + 33);
  EXPECT_FALSE(PublicKey::decode(bad_y).has_value());
  // All-ones coordinates.
  EXPECT_FALSE(PublicKey::decode([] {
                 Bytes b(65, 0xFF);
                 b[0] = 0x04;
                 return b;
               }()).has_value());
}

TEST(PublicKey, DecodeRejectsWrongSizesAndZeroPoint) {
  const PublicKey pub = key_from_seed(to_bytes("sz")).public_key();
  const Bytes good = pub.encode();
  EXPECT_FALSE(PublicKey::decode(Bytes{}).has_value());
  EXPECT_FALSE(PublicKey::decode(Bytes(1, 0x04)).has_value());
  Bytes truncated(good.begin(), good.end() - 1);
  EXPECT_FALSE(PublicKey::decode(truncated).has_value());
  Bytes oversized = good;
  oversized.push_back(0x00);  // trailing byte
  EXPECT_FALSE(PublicKey::decode(oversized).has_value());
  // (0, 0) is not on the curve (b != 0).
  Bytes zero(65, 0x00);
  zero[0] = 0x04;
  EXPECT_FALSE(PublicKey::decode(zero).has_value());
  // Compressed and hybrid prefixes are not accepted by the uncompressed
  // parser.
  for (std::uint8_t prefix : {0x00, 0x02, 0x03, 0x05, 0x06, 0x07, 0xFF}) {
    Bytes b = good;
    b[0] = prefix;
    EXPECT_FALSE(PublicKey::decode(b).has_value()) << int(prefix);
  }
}

TEST(Der, RejectsTruncatedAndOversizedLengths) {
  const Signature sig{U256::from_u64(0x123456), U256::from_u64(0x654321)};
  const Bytes good = der_encode_signature(sig);

  // Truncate at every byte boundary: no prefix may decode.
  for (std::size_t len = 0; len < good.size(); ++len) {
    Bytes prefix(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(der_decode_signature(prefix).has_value()) << "len " << len;
  }
  // Trailing bytes after a valid signature.
  for (std::uint8_t extra : {0x00, 0x30, 0xFF}) {
    Bytes trailing = good;
    trailing.push_back(extra);
    EXPECT_FALSE(der_decode_signature(trailing).has_value()) << int(extra);
  }
  // Sequence length larger than the payload.
  Bytes overlong = good;
  overlong[1] = static_cast<std::uint8_t>(good.size());  // > actual content
  EXPECT_FALSE(der_decode_signature(overlong).has_value());
  // Sequence length smaller than the payload (inner trailing bytes).
  Bytes underlong = good;
  underlong[1] -= 1;
  EXPECT_FALSE(der_decode_signature(underlong).has_value());
}

TEST(Der, RejectsNonMinimalLengthForms) {
  // Long-form length 0x81 encoding a value < 0x80 is non-minimal DER.
  // 0x30 0x81 0x06 | 02 01 01 | 02 01 01
  const Bytes non_minimal_seq = {0x30, 0x81, 0x06, 0x02, 0x01, 0x01,
                                 0x02, 0x01, 0x01};
  EXPECT_FALSE(der_decode_signature(non_minimal_seq).has_value());
  // Indefinite length (0x80) is BER, not DER.
  const Bytes indefinite = {0x30, 0x80, 0x02, 0x01, 0x01, 0x02,
                            0x01, 0x01, 0x00, 0x00};
  EXPECT_FALSE(der_decode_signature(indefinite).has_value());
  // Multi-byte long form (0x82) can never be needed for a 72-byte signature.
  const Bytes two_byte_len = {0x30, 0x82, 0x00, 0x06, 0x02, 0x01,
                              0x01, 0x02, 0x01, 0x01};
  EXPECT_FALSE(der_decode_signature(two_byte_len).has_value());
}

TEST(Der, RejectsMalformedIntegers) {
  // Zero-length integer.
  const Bytes empty_int = {0x30, 0x05, 0x02, 0x00, 0x02, 0x01, 0x01};
  EXPECT_FALSE(der_decode_signature(empty_int).has_value());
  // Wrong inner tag (0x03 BIT STRING instead of 0x02 INTEGER).
  const Bytes wrong_tag = {0x30, 0x06, 0x03, 0x01, 0x01, 0x02, 0x01, 0x01};
  EXPECT_FALSE(der_decode_signature(wrong_tag).has_value());
  // 34-byte integer body (0x00 + 33 bytes) exceeds the 32-byte field even
  // after stripping the sign byte.
  Bytes too_wide = {0x30, 0x28, 0x02, 0x23, 0x00, 0xFF};
  too_wide.insert(too_wide.end(), 33, 0xAA);
  too_wide.insert(too_wide.end(), {0x02, 0x01, 0x01});
  too_wide[5] = 0x80;  // keep the 0x00 prefix minimal (next byte high)
  EXPECT_FALSE(der_decode_signature(too_wide).has_value());
  // A 33-byte body with 0x00 prefix and high second byte IS valid DER for a
  // 256-bit integer: round-trip a max-range r to prove the path stays open.
  U256 big;
  big.w.fill(~std::uint64_t{0});
  const Signature wide_sig{big, U256::from_u64(1)};
  const auto wide_decoded = der_decode_signature(der_encode_signature(wide_sig));
  ASSERT_TRUE(wide_decoded.has_value());
  EXPECT_EQ(*wide_decoded, wide_sig);
}

TEST(Ecdsa, VerifyRejectsDegenerateAndBoundaryScalars) {
  const PrivateKey key = key_from_seed(to_bytes("bound"));
  const PublicKey pub = key.public_key();
  const Digest d = sha256(to_bytes("m"));
  const Signature good = sign(key, d);
  U256 n_minus_1 = p256_n();
  sub(n_minus_1, n_minus_1, U256::from_u64(1));
  U256 n_plus_1 = p256_n();
  add(n_plus_1, n_plus_1, U256::from_u64(1));
  U256 all_ones;
  all_ones.w.fill(~std::uint64_t{0});

  EXPECT_FALSE(verify(pub, d, Signature{U256{}, U256{}}));
  EXPECT_FALSE(verify(pub, d, Signature{good.r, U256{}}));
  EXPECT_FALSE(verify(pub, d, Signature{U256{}, good.s}));
  EXPECT_FALSE(verify(pub, d, Signature{p256_n(), good.s}));
  EXPECT_FALSE(verify(pub, d, Signature{good.r, p256_n()}));
  EXPECT_FALSE(verify(pub, d, Signature{n_plus_1, good.s}));
  EXPECT_FALSE(verify(pub, d, Signature{good.r, all_ones}));
  // In-range but wrong values still fail (n-1 is a legal scalar).
  EXPECT_FALSE(verify(pub, d, Signature{n_minus_1, good.s}));
  EXPECT_FALSE(verify(pub, d, Signature{good.r, n_minus_1}));
  // The honest signature still passes after all the rejects.
  EXPECT_TRUE(verify(pub, d, good));
}

TEST(Ecdsa, VerifyRejectsBadKeys) {
  const PrivateKey key = key_from_seed(to_bytes("badkey"));
  const Digest d = sha256(to_bytes("m"));
  const Signature sig = sign(key, d);

  // Point at infinity.
  PublicKey infinity_key;
  infinity_key.point = AffinePoint{{}, {}, true};
  EXPECT_FALSE(verify(infinity_key, d, sig));
  // Off-curve point.
  PublicKey off_curve = key.public_key();
  off_curve.point.x = add_mod(off_curve.point.x, U256::from_u64(1), p256_p());
  EXPECT_FALSE(verify(off_curve, d, sig));
  // Coordinates outside the field.
  PublicKey out_of_field = key.public_key();
  out_of_field.point.y = p256_p();
  EXPECT_FALSE(verify(out_of_field, d, sig));
  // (0, 0) "zero key".
  PublicKey zero_key;
  zero_key.point = AffinePoint{{}, {}, false};
  EXPECT_FALSE(verify(zero_key, d, sig));
}

TEST(Ecdsa, SignatureMalleabilityCounterpartIsDistinct) {
  // (r, n - s) is the other valid ECDSA signature for the same digest; the
  // verifier accepts both (Fabric does not enforce low-s), but they must
  // decode/encode as distinct DER.
  const PrivateKey key = key_from_seed(to_bytes("malle"));
  const Digest d = sha256(to_bytes("m"));
  const Signature sig = sign(key, d);
  Signature flipped = sig;
  flipped.s = sub_mod(U256{}, sig.s, p256_n());
  EXPECT_TRUE(verify(key.public_key(), d, flipped));
  EXPECT_NE(der_encode_signature(sig), der_encode_signature(flipped));
}

TEST(Der, Rfc6979SampleSignatureEncoding) {
  // The DataProcessor post-processor path: DER -> (r, s) -> 256-bit values.
  const PrivateKey key{U256::from_hex(kRfcPrivate)};
  const Signature sig = sign(key, sha256(to_bytes("sample")));
  const Bytes der = der_encode_signature(sig);
  EXPECT_EQ(der[0], 0x30);
  const auto back = der_decode_signature(der);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(verify(key.public_key(), sha256(to_bytes("sample")), *back));
}

}  // namespace
}  // namespace bm::crypto

// The durable-ledger subsystem end to end (docs/DURABILITY.md): StateDb
// snapshot files, snapshot + replay-from-height recovery, and the
// kill-and-restart crash drill.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "fabric/durability.hpp"
#include "obs/metrics.hpp"
#include "workload/chaos.hpp"
#include "workload/network_harness.hpp"

namespace bm::fabric {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct DurabilityFixture : ::testing::Test {
  DurabilityFixture() {
    config.ledger_path = temp_path("bm_durability_test.log");
    options.block_size = 3;
    options.seed = 59;
  }
  void SetUp() override { remove_files(); }
  void TearDown() override { remove_files(); }

  void remove_files() {
    std::error_code ec;
    std::filesystem::remove(config.ledger_path, ec);
    for (const auto& entry : std::filesystem::directory_iterator(
             std::filesystem::temp_directory_path(), ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("bm_durability_test.log.snap.", 0) == 0)
        std::filesystem::remove(entry.path(), ec);
    }
  }

  /// Commit n blocks through a durability-enabled harness, then drop it.
  /// Returns the reference tail commit hash.
  crypto::Digest commit_durably(int n) {
    workload::NetworkOptions net = options;
    net.durability = config;
    workload::FabricNetworkHarness harness(net);
    for (int i = 0; i < n; ++i) harness.next_block();
    harness.durable()->sync();
    return harness.reference_ledger().last_commit_hash();
  }

  DurabilityConfig config;
  workload::NetworkOptions options;
};

// --- StateDb snapshot files -------------------------------------------------

TEST(StateSnapshot, RoundTrip) {
  const std::string path = temp_path("bm_state_snapshot_test.snap");
  StateDb original(4);
  original.put(StateDb::namespaced("cc", "alpha"), to_bytes("1"), {3, 0});
  original.put(StateDb::namespaced("cc", "beta"), to_bytes("two"), {3, 1});
  original.put(StateDb::namespaced("dd", "gamma"), to_bytes(""), {7, 2});

  StateSnapshotMeta meta;
  meta.height = 8;
  meta.commit_hash = Bytes(32, 0xAA);
  meta.header_hash = Bytes(32, 0xBB);
  ASSERT_TRUE(original.snapshot(path, meta));

  // A different shard count must not matter: entries re-route by hash.
  StateDb restored(2);
  const auto got = restored.restore(path);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->height, 8u);
  EXPECT_EQ(got->commit_hash, meta.commit_hash);
  EXPECT_EQ(got->header_hash, meta.header_hash);
  EXPECT_EQ(restored.size(), original.size());
  const auto beta = restored.get(StateDb::namespaced("cc", "beta"));
  ASSERT_TRUE(beta.has_value());
  EXPECT_EQ(beta->value, to_bytes("two"));
  EXPECT_EQ(beta->version, (Version{3, 1}));
  std::remove(path.c_str());
}

TEST(StateSnapshot, CorruptionAndTruncationRejected) {
  const std::string path = temp_path("bm_state_snapshot_test.snap");
  StateDb original(4);
  for (int i = 0; i < 32; ++i)
    original.put("key" + std::to_string(i), to_bytes(std::to_string(i)),
                 {static_cast<std::uint64_t>(i), 0});
  ASSERT_TRUE(original.snapshot(path, StateSnapshotMeta{5, Bytes(32, 1),
                                                        Bytes(32, 2)}));
  const auto full_size = std::filesystem::file_size(path);

  // Flip a byte in the middle: CRC framing must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, static_cast<long>(full_size / 2), SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x10, f);
    std::fclose(f);
  }
  StateDb victim(4);
  victim.put("stale", to_bytes("x"), {1, 0});
  EXPECT_FALSE(victim.restore(path).has_value());
  EXPECT_EQ(victim.size(), 0u);  // cleared, never half-restored

  // Torn mid-write (no atomic-rename protection in this simulation of it).
  ASSERT_TRUE(original.snapshot(path, StateSnapshotMeta{5, Bytes(32, 1),
                                                        Bytes(32, 2)}));
  std::filesystem::resize_file(path, full_size - 7);
  EXPECT_FALSE(victim.restore(path).has_value());

  // Missing file.
  std::remove(path.c_str());
  EXPECT_FALSE(victim.restore(path).has_value());
}

// --- DurableLedger recovery -------------------------------------------------

TEST_F(DurabilityFixture, RecoverWithoutSnapshotsReplaysFromGenesis) {
  const crypto::Digest want = commit_durably(5);

  Ledger ledger;
  StateDb state;
  const RecoveryResult result = DurableLedger::recover(config, ledger, state);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.used_snapshot);
  EXPECT_EQ(result.blocks_replayed, 5u);
  EXPECT_EQ(ledger.height(), 5u);
  EXPECT_EQ(ledger.last_commit_hash(), want);
  EXPECT_GT(state.size(), 0u);
}

TEST_F(DurabilityFixture, RecoverUsesNewestSnapshotAndReplaysTheRest) {
  config.snapshot_interval = 2;
  config.keep_snapshots = 2;
  const crypto::Digest want = commit_durably(7);

  // Snapshots were cut at heights 2, 4 and 6; pruning keeps {4, 6}.
  EXPECT_FALSE(std::filesystem::exists(DurableLedger::snapshot_path(config, 2)));
  EXPECT_TRUE(std::filesystem::exists(DurableLedger::snapshot_path(config, 4)));
  EXPECT_TRUE(std::filesystem::exists(DurableLedger::snapshot_path(config, 6)));

  Ledger ledger;
  StateDb state;
  const RecoveryResult result = DurableLedger::recover(config, ledger, state);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.used_snapshot);
  EXPECT_EQ(result.snapshot_height, 6u);
  EXPECT_EQ(result.blocks_replayed, 1u);  // only block 6 replays
  EXPECT_EQ(ledger.height(), 7u);
  EXPECT_EQ(ledger.base_height(), 6u);
  EXPECT_EQ(ledger.last_commit_hash(), want);

  // The snapshot-seeded state must agree with a full genesis replay.
  Ledger full_ledger;
  StateDb full_state;
  ASSERT_TRUE(replay_chain(FileBlockStore::recover(config.ledger_path),
                           full_ledger, &full_state));
  EXPECT_EQ(state.size(), full_state.size());
}

TEST_F(DurabilityFixture, CorruptNewestSnapshotFallsBackToOlder) {
  config.snapshot_interval = 2;
  config.keep_snapshots = 3;
  const crypto::Digest want = commit_durably(7);

  // Poison the newest snapshot (height 6); recovery must fall back to 4.
  {
    const std::string newest = DurableLedger::snapshot_path(config, 6);
    std::FILE* f = std::fopen(newest.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  Ledger ledger;
  StateDb state;
  const RecoveryResult result = DurableLedger::recover(config, ledger, state);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.used_snapshot);
  EXPECT_EQ(result.snapshot_height, 4u);
  EXPECT_EQ(result.blocks_replayed, 3u);
  EXPECT_EQ(ledger.height(), 7u);
  EXPECT_EQ(ledger.last_commit_hash(), want);
}

TEST_F(DurabilityFixture, SnapshotAboveTornLogIsIgnored) {
  config.snapshot_interval = 3;
  commit_durably(6);  // snapshots at 3 and 6

  // Tear the last record: the log now ends at height 5, below snapshot 6.
  const auto chain = FileBlockStore::recover(config.ledger_path);
  ASSERT_EQ(chain.blocks.size(), 6u);
  std::filesystem::resize_file(config.ledger_path,
                               chain.record_offsets[5] + 13);

  Ledger ledger;
  StateDb state;
  const RecoveryResult result = DurableLedger::recover(config, ledger, state);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.used_snapshot);
  EXPECT_EQ(result.snapshot_height, 3u);  // 6 cannot seed a 5-block log
  EXPECT_EQ(ledger.height(), 5u);
  EXPECT_GT(result.torn_bytes, 0u);

  // A reopened DurableLedger agrees: height 5, snapshot age counted from 3.
  DurableLedger durable(config);
  EXPECT_EQ(durable.store().height(), 5u);
  EXPECT_EQ(durable.last_snapshot_height(), 3u);
  EXPECT_EQ(durable.snapshot_age_blocks(), 2u);
}

// --- the kill-and-restart drill ---------------------------------------------

TEST_F(DurabilityFixture, CrashRecoveryScenarioPasses) {
  workload::CrashRecoveryOptions crash;
  crash.network = options;
  crash.durability = config;
  crash.durability.snapshot_interval = 3;
  crash.blocks_before_crash = 8;
  crash.blocks_after = 4;

  obs::Registry registry;
  const workload::CrashRecoveryReport report =
      workload::run_crash_recovery(crash, &registry);
  EXPECT_TRUE(report.ok()) << report.mismatch << "\n" << report.to_text();
  EXPECT_TRUE(report.crashed_mid_record);
  EXPECT_GT(report.recovery.torn_bytes, 0u);
  EXPECT_EQ(report.recovered_height, 7u);
  EXPECT_EQ(report.final_height, 12u);

  // Deterministic: the whole drill reproduces byte for byte.
  const workload::CrashRecoveryReport again =
      workload::run_crash_recovery(crash);
  EXPECT_EQ(report.to_text(), again.to_text());
}

TEST_F(DurabilityFixture, CrashRecoveryWithoutSnapshotsStillPasses) {
  workload::CrashRecoveryOptions crash;
  crash.network = options;
  crash.durability = config;  // snapshot_interval = 0: full replay only
  crash.blocks_before_crash = 5;
  crash.blocks_after = 3;

  const workload::CrashRecoveryReport report =
      workload::run_crash_recovery(crash);
  EXPECT_TRUE(report.ok()) << report.mismatch << "\n" << report.to_text();
  EXPECT_FALSE(report.recovery.used_snapshot);
}

// --- wiring: harness-level durability ---------------------------------------

TEST_F(DurabilityFixture, HarnessPersistsExactlyTheCommittedChain) {
  workload::NetworkOptions net = options;
  net.durability = config;
  net.durability.snapshot_interval = 4;
  net.durability.fsync_each_block = true;

  crypto::Digest want;
  {
    workload::FabricNetworkHarness harness(net);
    for (int i = 0; i < 6; ++i) harness.next_block();
    want = harness.reference_ledger().last_commit_hash();

    ASSERT_NE(harness.durable(), nullptr);
    EXPECT_EQ(harness.durable()->store().height(), 6u);
    EXPECT_GE(harness.durable()->store().fsyncs(), 6u);
    EXPECT_EQ(harness.durable()->snapshots_cut(), 1u);
    EXPECT_EQ(harness.durable()->snapshot_age_blocks(), 2u);

    obs::Registry registry;
    harness.durable()->publish_metrics(registry, "durable");
    EXPECT_EQ(registry.gauge("durable_height", "").value(), 6.0);
    EXPECT_EQ(registry.gauge("durable_last_snapshot_height", "").value(), 4.0);
  }

  Ledger ledger;
  StateDb state;
  const RecoveryResult result = DurableLedger::recover(config, ledger, state);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(ledger.height(), 6u);
  EXPECT_EQ(ledger.last_commit_hash(), want);
}

}  // namespace
}  // namespace bm::fabric

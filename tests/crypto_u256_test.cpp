#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/p256.hpp"
#include "crypto/u256.hpp"

namespace bm::crypto {
namespace {

U256 random_u256(Rng& rng) {
  U256 r;
  for (auto& w : r.w) w = rng.next_u64();
  return r;
}

TEST(U256, FromHexAndBytes) {
  const U256 v = U256::from_hex("0123456789abcdef");
  EXPECT_EQ(v.w[0], 0x0123456789abcdefull);
  EXPECT_EQ(v.w[1], 0u);

  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const U256 x = random_u256(rng);
    EXPECT_EQ(U256::from_bytes_be(x.to_bytes_be()), x);
  }
}

TEST(U256, HexRoundTripViaBytes) {
  const U256 x = U256::from_hex(
      "ffffffff00000001000000000000000000000000fffffffffffffffffffffffe");
  EXPECT_EQ(x.to_bytes_be()[31], 0xfe);
  EXPECT_EQ(x.to_bytes_be()[0], 0xff);
}

TEST(U256, CompareAndBits) {
  const U256 a = U256::from_u64(5);
  const U256 b = U256::from_u64(7);
  EXPECT_EQ(cmp(a, b), -1);
  EXPECT_EQ(cmp(b, a), 1);
  EXPECT_EQ(cmp(a, a), 0);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(2));
  EXPECT_EQ(a.top_bit(), 2);
  EXPECT_EQ(U256{}.top_bit(), -1);
  EXPECT_TRUE(U256{}.is_zero());
}

TEST(U256, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    U256 sum, back;
    const std::uint64_t carry = add(sum, a, b);
    const std::uint64_t borrow = sub(back, sum, b);
    EXPECT_EQ(back, a);
    // carry out of a+b equals borrow of (a+b)-b wrapping behaviour
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256, MulWideMatchesSmallProducts) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const U512 p = mul_wide(U256::from_u64(a), U256::from_u64(b));
    const unsigned __int128 expected =
        static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(p.w[0], static_cast<std::uint64_t>(expected));
    EXPECT_EQ(p.w[1], static_cast<std::uint64_t>(expected >> 64));
    for (int j = 2; j < 8; ++j) EXPECT_EQ(p.w[j], 0u);
  }
}

TEST(U256, ModAgainstSmallOracle) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const std::uint64_t m = rng.next_u64() | 1;
    const U512 wide = mul_wide(U256::from_u64(a), U256::from_u64(b));
    const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(mod(wide, U256::from_u64(m)),
              U256::from_u64(static_cast<std::uint64_t>(prod % m)));
  }
}

TEST(U256, ModularAlgebra) {
  // (a + b) - b == a, (a*b) mod m == (b*a) mod m, distributivity.
  Rng rng(5);
  const U256 m = p256_n();
  for (int i = 0; i < 100; ++i) {
    const U256 a = mod(random_u256(rng), m);
    const U256 b = mod(random_u256(rng), m);
    const U256 c = mod(random_u256(rng), m);
    EXPECT_EQ(sub_mod(add_mod(a, b, m), b, m), a);
    EXPECT_EQ(mul_mod(a, b, m), mul_mod(b, a, m));
    // a*(b+c) == a*b + a*c (mod m)
    EXPECT_EQ(mul_mod(a, add_mod(b, c, m), m),
              add_mod(mul_mod(a, b, m), mul_mod(a, c, m), m));
  }
}

TEST(U256, PowModIdentities) {
  const U256 m = p256_p();
  Rng rng(6);
  const U256 a = mod(random_u256(rng), m);
  EXPECT_EQ(pow_mod(a, U256::from_u64(0), m), U256::from_u64(1));
  EXPECT_EQ(pow_mod(a, U256::from_u64(1), m), a);
  EXPECT_EQ(pow_mod(a, U256::from_u64(2), m), mul_mod(a, a, m));
}

TEST(U256, InverseModPrime) {
  Rng rng(7);
  for (const U256& m : {p256_p(), p256_n()}) {
    for (int i = 0; i < 20; ++i) {
      U256 a = mod(random_u256(rng), m);
      if (a.is_zero()) a = U256::from_u64(1);
      const U256 inv = inv_mod_prime(a, m);
      EXPECT_EQ(mul_mod(a, inv, m), U256::from_u64(1));
    }
  }
}

TEST(P256, FastReductionMatchesGenericMod) {
  // fp_reduce is the dedicated NIST-prime reduction; cross-check against the
  // generic shift-subtract division on random products a*b with a,b < p.
  Rng rng(8);
  const U256& p = p256_p();
  for (int i = 0; i < 500; ++i) {
    const U256 a = mod(random_u256(rng), p);
    const U256 b = mod(random_u256(rng), p);
    const U512 wide = mul_wide(a, b);
    EXPECT_EQ(fp_reduce(wide), mod(wide, p));
  }
}

TEST(P256, FastReductionEdgeCases) {
  const U256& p = p256_p();
  U256 p_minus_1;
  sub(p_minus_1, p, U256::from_u64(1));

  // 0, 1, (p-1)^2, p*p-ish values.
  EXPECT_EQ(fp_reduce(U512{}), U256{});
  EXPECT_EQ(fp_reduce(mul_wide(p_minus_1, p_minus_1)),
            mod(mul_wide(p_minus_1, p_minus_1), p));
  EXPECT_EQ(fp_reduce(mul_wide(p, p)), U256{});

  U512 max;
  for (auto& w : max.w) w = ~0ull;
  EXPECT_EQ(fp_reduce(max), mod(max, p));
}

TEST(P256, FieldOpsConsistency) {
  Rng rng(9);
  const U256& p = p256_p();
  for (int i = 0; i < 100; ++i) {
    const U256 a = mod(random_u256(rng), p);
    const U256 b = mod(random_u256(rng), p);
    EXPECT_EQ(fp_mul(a, b), mul_mod(a, b, p));
    EXPECT_EQ(fp_add(a, b), add_mod(a, b, p));
    EXPECT_EQ(fp_sub(a, b), sub_mod(a, b, p));
    EXPECT_EQ(fp_sqr(a), fp_mul(a, a));
    if (!a.is_zero())
      EXPECT_EQ(fp_mul(a, fp_inv(a)), U256::from_u64(1));
  }
}

TEST(U256, LimbDivisionMatchesBitwiseOracle) {
  // The Knuth-D remainder path against the retained bit-by-bit oracle, over
  // random dividends and moduli of every limb width.
  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    U512 a;
    for (auto& w : a.w) w = rng.next_u64();
    // Vary modulus width: 1..4 significant limbs, occasionally sparse.
    U256 m;
    const int limbs = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int j = 0; j < limbs; ++j) m.w[j] = rng.next_u64();
    if (m.w[limbs - 1] == 0) m.w[limbs - 1] = 1;
    if (i % 7 == 0) m.w[0] = 0;  // force a zero low limb
    if (m.is_zero()) m.w[0] = 1;
    EXPECT_EQ(mod(a, m), mod_bitwise(a, m)) << "iteration " << i;
  }
}

TEST(U256, LimbDivisionEdgeCases) {
  U256 one = U256::from_u64(1);
  U512 zero512;
  EXPECT_EQ(mod(zero512, one), U256{});
  EXPECT_EQ(mod(zero512, p256_p()), U256{});

  U512 max512;
  for (auto& w : max512.w) w = ~std::uint64_t{0};
  U256 max256;
  for (auto& w : max256.w) w = ~std::uint64_t{0};
  // Modulus 1 -> 0; modulus 2^64-1; modulus 2^256-1; powers of two.
  EXPECT_EQ(mod(max512, one), mod_bitwise(max512, one));
  EXPECT_EQ(mod(max512, U256::from_u64(~std::uint64_t{0})),
            mod_bitwise(max512, U256::from_u64(~std::uint64_t{0})));
  EXPECT_EQ(mod(max512, max256), mod_bitwise(max512, max256));
  for (int shift : {1, 63, 64, 65, 127, 128, 192, 255}) {
    U256 pow2;
    pow2.w[shift / 64] = std::uint64_t{1} << (shift % 64);
    EXPECT_EQ(mod(max512, pow2), mod_bitwise(max512, pow2)) << shift;
  }
  // Dividend smaller than modulus passes through.
  U512 small;
  small.w[0] = 42;
  EXPECT_EQ(mod(small, p256_p()), U256::from_u64(42));
  // Dividend exactly the modulus (and modulus +- 1) reduce correctly.
  const U256& p = p256_p();
  U512 pw;
  for (int i = 0; i < 4; ++i) pw.w[i] = p.w[i];
  EXPECT_EQ(mod(pw, p), U256{});
  U256 p_plus_1;
  add(p_plus_1, p, one);
  for (int i = 0; i < 4; ++i) pw.w[i] = p_plus_1.w[i];
  EXPECT_EQ(mod(pw, p), U256::from_u64(1));
}

TEST(U256, LimbDivisionStressesQhatCorrection) {
  // Dividends shaped to trigger the qhat-too-large correction and add-back
  // branches: top limbs equal to the normalized divisor's top limb.
  Rng rng(78);
  for (int i = 0; i < 200; ++i) {
    U256 m;
    m.w[3] = rng.next_u64() | (std::uint64_t{1} << 63);  // already normalized
    m.w[0] = rng.next_u64();
    U512 a;
    a.w[7] = m.w[3];  // un[j+k] == vn[k-1] forces the qhat cap
    a.w[6] = rng.next_u64();
    a.w[5] = ~std::uint64_t{0};
    a.w[0] = rng.next_u64();
    EXPECT_EQ(mod(a, m), mod_bitwise(a, m)) << "iteration " << i;
  }
}

}  // namespace
}  // namespace bm::crypto

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/p256.hpp"
#include "crypto/u256.hpp"

namespace bm::crypto {
namespace {

U256 random_u256(Rng& rng) {
  U256 r;
  for (auto& w : r.w) w = rng.next_u64();
  return r;
}

TEST(U256, FromHexAndBytes) {
  const U256 v = U256::from_hex("0123456789abcdef");
  EXPECT_EQ(v.w[0], 0x0123456789abcdefull);
  EXPECT_EQ(v.w[1], 0u);

  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const U256 x = random_u256(rng);
    EXPECT_EQ(U256::from_bytes_be(x.to_bytes_be()), x);
  }
}

TEST(U256, HexRoundTripViaBytes) {
  const U256 x = U256::from_hex(
      "ffffffff00000001000000000000000000000000fffffffffffffffffffffffe");
  EXPECT_EQ(x.to_bytes_be()[31], 0xfe);
  EXPECT_EQ(x.to_bytes_be()[0], 0xff);
}

TEST(U256, CompareAndBits) {
  const U256 a = U256::from_u64(5);
  const U256 b = U256::from_u64(7);
  EXPECT_EQ(cmp(a, b), -1);
  EXPECT_EQ(cmp(b, a), 1);
  EXPECT_EQ(cmp(a, a), 0);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(2));
  EXPECT_EQ(a.top_bit(), 2);
  EXPECT_EQ(U256{}.top_bit(), -1);
  EXPECT_TRUE(U256{}.is_zero());
}

TEST(U256, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    U256 sum, back;
    const std::uint64_t carry = add(sum, a, b);
    const std::uint64_t borrow = sub(back, sum, b);
    EXPECT_EQ(back, a);
    // carry out of a+b equals borrow of (a+b)-b wrapping behaviour
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256, MulWideMatchesSmallProducts) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const U512 p = mul_wide(U256::from_u64(a), U256::from_u64(b));
    const unsigned __int128 expected =
        static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(p.w[0], static_cast<std::uint64_t>(expected));
    EXPECT_EQ(p.w[1], static_cast<std::uint64_t>(expected >> 64));
    for (int j = 2; j < 8; ++j) EXPECT_EQ(p.w[j], 0u);
  }
}

TEST(U256, ModAgainstSmallOracle) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const std::uint64_t m = rng.next_u64() | 1;
    const U512 wide = mul_wide(U256::from_u64(a), U256::from_u64(b));
    const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(mod(wide, U256::from_u64(m)),
              U256::from_u64(static_cast<std::uint64_t>(prod % m)));
  }
}

TEST(U256, ModularAlgebra) {
  // (a + b) - b == a, (a*b) mod m == (b*a) mod m, distributivity.
  Rng rng(5);
  const U256 m = p256_n();
  for (int i = 0; i < 100; ++i) {
    const U256 a = mod(random_u256(rng), m);
    const U256 b = mod(random_u256(rng), m);
    const U256 c = mod(random_u256(rng), m);
    EXPECT_EQ(sub_mod(add_mod(a, b, m), b, m), a);
    EXPECT_EQ(mul_mod(a, b, m), mul_mod(b, a, m));
    // a*(b+c) == a*b + a*c (mod m)
    EXPECT_EQ(mul_mod(a, add_mod(b, c, m), m),
              add_mod(mul_mod(a, b, m), mul_mod(a, c, m), m));
  }
}

TEST(U256, PowModIdentities) {
  const U256 m = p256_p();
  Rng rng(6);
  const U256 a = mod(random_u256(rng), m);
  EXPECT_EQ(pow_mod(a, U256::from_u64(0), m), U256::from_u64(1));
  EXPECT_EQ(pow_mod(a, U256::from_u64(1), m), a);
  EXPECT_EQ(pow_mod(a, U256::from_u64(2), m), mul_mod(a, a, m));
}

TEST(U256, InverseModPrime) {
  Rng rng(7);
  for (const U256& m : {p256_p(), p256_n()}) {
    for (int i = 0; i < 20; ++i) {
      U256 a = mod(random_u256(rng), m);
      if (a.is_zero()) a = U256::from_u64(1);
      const U256 inv = inv_mod_prime(a, m);
      EXPECT_EQ(mul_mod(a, inv, m), U256::from_u64(1));
    }
  }
}

TEST(P256, FastReductionMatchesGenericMod) {
  // fp_reduce is the dedicated NIST-prime reduction; cross-check against the
  // generic shift-subtract division on random products a*b with a,b < p.
  Rng rng(8);
  const U256& p = p256_p();
  for (int i = 0; i < 500; ++i) {
    const U256 a = mod(random_u256(rng), p);
    const U256 b = mod(random_u256(rng), p);
    const U512 wide = mul_wide(a, b);
    EXPECT_EQ(fp_reduce(wide), mod(wide, p));
  }
}

TEST(P256, FastReductionEdgeCases) {
  const U256& p = p256_p();
  U256 p_minus_1;
  sub(p_minus_1, p, U256::from_u64(1));

  // 0, 1, (p-1)^2, p*p-ish values.
  EXPECT_EQ(fp_reduce(U512{}), U256{});
  EXPECT_EQ(fp_reduce(mul_wide(p_minus_1, p_minus_1)),
            mod(mul_wide(p_minus_1, p_minus_1), p));
  EXPECT_EQ(fp_reduce(mul_wide(p, p)), U256{});

  U512 max;
  for (auto& w : max.w) w = ~0ull;
  EXPECT_EQ(fp_reduce(max), mod(max, p));
}

TEST(P256, FieldOpsConsistency) {
  Rng rng(9);
  const U256& p = p256_p();
  for (int i = 0; i < 100; ++i) {
    const U256 a = mod(random_u256(rng), p);
    const U256 b = mod(random_u256(rng), p);
    EXPECT_EQ(fp_mul(a, b), mul_mod(a, b, p));
    EXPECT_EQ(fp_add(a, b), add_mod(a, b, p));
    EXPECT_EQ(fp_sub(a, b), sub_mod(a, b, p));
    EXPECT_EQ(fp_sqr(a), fp_mul(a, a));
    if (!a.is_zero())
      EXPECT_EQ(fp_mul(a, fp_inv(a)), U256::from_u64(1));
  }
}

}  // namespace
}  // namespace bm::crypto

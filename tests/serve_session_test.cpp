// Session/identity layer of the serving front end (serve/session.hpp) and
// its O(1) timer wheel (serve/timer_wheel.hpp): handshake authentication
// against the MSP, monotone per-session sequence numbers, idle eviction
// with a reconnect grace window, wheel-vs-naive-oracle exactness, and the
// session-aware pipeline's determinism + per-class accounting.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "fabric/identity.hpp"
#include "serve/pipeline.hpp"
#include "serve/session.hpp"
#include "serve/timer_wheel.hpp"
#include "sim/simulation.hpp"

namespace bm::serve {
namespace {

struct SessionFixture {
  sim::Simulation sim;
  fabric::Msp msp;
  fabric::Certificate good_cert;
  fabric::Certificate rogue_cert;

  SessionFixture() {
    fabric::CertificateAuthority& ca = msp.add_org("Org1");
    good_cert = ca.issue(fabric::Role::kClient, 0, "client0.test").cert;
    // Issued by a CA the MSP never registered: the forged-handshake case.
    const fabric::CertificateAuthority rogue("RogueOrg", 200);
    rogue_cert = rogue.issue(fabric::Role::kClient, 0, "rogue.test").cert;
  }

  SessionConfig config() const {
    SessionConfig c;
    c.enabled = true;
    c.idle_timeout = 50 * sim::kMillisecond;
    c.grace = 20 * sim::kMillisecond;
    c.wheel_granularity = sim::kMillisecond;
    c.rate_classes = 3;
    return c;
  }
};

TEST(SessionManager, HandshakeValidatesAgainstMsp) {
  SessionFixture f;
  SessionManager manager(f.sim, f.msp, f.config());

  const auto ok = manager.open(f.good_cert, 1);
  EXPECT_EQ(ok.verdict, SessionVerdict::kOk);
  EXPECT_NE(ok.id, kNoSession);
  EXPECT_TRUE(manager.is_active(ok.id));
  EXPECT_EQ(manager.rate_class(ok.id), 1);

  const auto bad = manager.open(f.rogue_cert, 0);
  EXPECT_EQ(bad.verdict, SessionVerdict::kBadCert);
  EXPECT_EQ(bad.id, kNoSession);
  EXPECT_EQ(manager.stats().opened, 1u);
  EXPECT_EQ(manager.stats().rejected_bad_cert, 1u);
  EXPECT_EQ(manager.active_count(), 1u);
}

TEST(SessionManager, CapacityCapRejects) {
  SessionFixture f;
  SessionConfig config = f.config();
  config.max_sessions = 2;
  SessionManager manager(f.sim, f.msp, config);

  EXPECT_EQ(manager.open(f.good_cert, 0).verdict, SessionVerdict::kOk);
  EXPECT_EQ(manager.open(f.good_cert, 0).verdict, SessionVerdict::kOk);
  EXPECT_EQ(manager.open(f.good_cert, 0).verdict, SessionVerdict::kCapacity);
  EXPECT_EQ(manager.stats().rejected_capacity, 1u);
}

TEST(SessionManager, SequenceNumbersAreMonotone) {
  SessionFixture f;
  SessionConfig config = f.config();
  config.seq_limit = 4;
  SessionManager manager(f.sim, f.msp, config);
  const SessionId id = manager.open(f.good_cert, 0).id;

  EXPECT_EQ(manager.expected_seq(id), 0u);
  EXPECT_EQ(manager.submit(id, 0), SessionVerdict::kOk);
  EXPECT_EQ(manager.submit(id, 1), SessionVerdict::kOk);
  EXPECT_EQ(manager.expected_seq(id), 2u);

  // Replay of an already-consumed number.
  EXPECT_EQ(manager.submit(id, 1), SessionVerdict::kDuplicateSeq);
  // Gap: a number from the future.
  EXPECT_EQ(manager.submit(id, 3), SessionVerdict::kOutOfOrderSeq);
  // Neither rejection advanced the expectation.
  EXPECT_EQ(manager.expected_seq(id), 2u);
  EXPECT_EQ(manager.submit(id, 2), SessionVerdict::kOk);
  EXPECT_EQ(manager.submit(id, 3), SessionVerdict::kOk);

  // seq_limit exhausts the session's sequence space.
  EXPECT_EQ(manager.submit(id, 4), SessionVerdict::kSeqOverflow);
  EXPECT_EQ(manager.stats().seq_duplicate, 1u);
  EXPECT_EQ(manager.stats().seq_out_of_order, 1u);
  EXPECT_EQ(manager.stats().seq_overflow, 1u);

  // Unknown handles are rejected outright.
  EXPECT_EQ(manager.submit(0xdeadbeefull << 32 | 17, 0),
            SessionVerdict::kUnknownSession);
}

TEST(SessionManager, IdleEvictionAndGraceReconnect) {
  SessionFixture f;
  SessionManager manager(f.sim, f.msp, f.config());
  const SessionId id = manager.open(f.good_cert, 2).id;
  EXPECT_EQ(manager.submit(id, 0), SessionVerdict::kOk);

  // Idle past the timeout: evicted into the grace window.
  f.sim.run_until(60 * sim::kMillisecond);
  EXPECT_FALSE(manager.is_active(id));
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_EQ(manager.grace_count(), 1u);
  EXPECT_EQ(manager.stats().evicted, 1u);
  // Submitting against an evicted session demands a resume first.
  EXPECT_EQ(manager.submit(id, 1), SessionVerdict::kIdleEvicted);

  // Reconnect within grace: same id, sequence state intact.
  EXPECT_EQ(manager.resume(id, f.good_cert), SessionVerdict::kOk);
  EXPECT_TRUE(manager.is_active(id));
  EXPECT_EQ(manager.expected_seq(id), 1u);
  EXPECT_EQ(manager.rate_class(id), 2);
  EXPECT_EQ(manager.stats().reconnected, 1u);
  EXPECT_EQ(manager.submit(id, 1), SessionVerdict::kOk);

  // Last activity was the submit at 60ms, so eviction lands at 110ms and
  // the grace window runs to 130ms. A resume handshake still authenticates:
  // inside the window, a forged cert is refused, not resumed.
  f.sim.run_until(120 * sim::kMillisecond);
  EXPECT_FALSE(manager.is_active(id));
  EXPECT_EQ(manager.resume(id, f.rogue_cert), SessionVerdict::kBadCert);
}

TEST(SessionManager, GraceExpiryPurgesAndBumpsGeneration) {
  SessionFixture f;
  SessionManager manager(f.sim, f.msp, f.config());
  const SessionId id = manager.open(f.good_cert, 0).id;

  // idle_timeout (50ms) + grace (20ms): past both, the slot is purged.
  f.sim.run_until(100 * sim::kMillisecond);
  EXPECT_EQ(manager.grace_count(), 0u);
  EXPECT_EQ(manager.stats().purged, 1u);
  EXPECT_EQ(manager.resume(id, f.good_cert), SessionVerdict::kUnknownSession);
  EXPECT_EQ(manager.submit(id, 1), SessionVerdict::kUnknownSession);

  // The slot is recycled under a new generation; the stale id stays dead.
  const SessionId fresh = manager.open(f.good_cert, 0).id;
  EXPECT_NE(fresh, id);
  EXPECT_EQ(static_cast<std::uint32_t>(fresh), static_cast<std::uint32_t>(id))
      << "expected the purged slot to be reused";
  EXPECT_EQ(manager.submit(id, 0), SessionVerdict::kUnknownSession);
  EXPECT_EQ(manager.submit(fresh, 0), SessionVerdict::kOk);
}

TEST(SessionManager, SubmitRefreshesIdleTimer) {
  SessionFixture f;
  SessionManager manager(f.sim, f.msp, f.config());
  const SessionId id = manager.open(f.good_cert, 0).id;

  // Keep touching the session every 30ms; it must never evict even though
  // the total elapsed time is many idle_timeouts.
  for (int i = 1; i <= 10; ++i) {
    f.sim.run_until(i * 30 * sim::kMillisecond);
    EXPECT_TRUE(manager.is_active(id)) << "evicted at step " << i;
    EXPECT_EQ(manager.submit(id, static_cast<std::uint64_t>(i - 1)),
              SessionVerdict::kOk);
  }
  EXPECT_EQ(manager.stats().evicted, 0u);
}

// --- timer wheel -------------------------------------------------------------

// Naive oracle: a map of armed deadlines, quantized with the same
// ceil-to-tick rule the wheel documents (a timer armed for T fires at the
// first wheel tick >= T, never in the past).
class NaiveWheel {
 public:
  explicit NaiveWheel(sim::Time granularity) : granularity_(granularity) {}

  void arm(std::uint32_t key, sim::Time deadline) {
    std::uint64_t tick =
        deadline <= 0
            ? current_ + 1
            : (static_cast<std::uint64_t>(deadline) +
               static_cast<std::uint64_t>(granularity_) - 1) /
                  static_cast<std::uint64_t>(granularity_);
    if (tick <= current_) tick = current_ + 1;
    armed_[key] = tick;
  }
  void disarm(std::uint32_t key) { armed_.erase(key); }

  std::set<std::uint32_t> advance(sim::Time now) {
    const std::uint64_t target = static_cast<std::uint64_t>(now) /
                                 static_cast<std::uint64_t>(granularity_);
    std::set<std::uint32_t> fired;
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (it->second <= target) {
        fired.insert(it->first);
        it = armed_.erase(it);
      } else {
        ++it;
      }
    }
    if (target > current_) current_ = target;
    return fired;
  }

  std::size_t size() const { return armed_.size(); }

 private:
  sim::Time granularity_;
  std::uint64_t current_ = 0;
  std::map<std::uint32_t, std::uint64_t> armed_;
};

TEST(TimerWheel, MatchesNaiveOracleUnderRandomWorkload) {
  const sim::Time g = sim::kMillisecond;
  TimerWheel wheel(g);
  NaiveWheel oracle(g);
  Rng rng(2024);

  constexpr std::uint32_t kKeys = 512;
  sim::Time now = 0;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.uniform(10);
    const std::uint32_t key = static_cast<std::uint32_t>(rng.uniform(kKeys));
    if (op < 5) {
      // Mix of near deadlines (level 0) and far ones (cascading levels).
      const sim::Time horizon = (op % 2 == 0) ? 200 * g : 3000 * g;
      const sim::Time deadline =
          now + static_cast<sim::Time>(rng.uniform(
                    static_cast<std::uint64_t>(horizon))) + 1;
      wheel.arm(key, deadline);
      oracle.arm(key, deadline);
    } else if (op < 7) {
      wheel.disarm(key);
      oracle.disarm(key);
    } else {
      now += static_cast<sim::Time>(rng.uniform(300)) * g / 4 + 1;
      std::set<std::uint32_t> fired;
      wheel.advance(now, [&](std::uint32_t k) { fired.insert(k); });
      EXPECT_EQ(fired, oracle.advance(now)) << "step " << step;
    }
    ASSERT_EQ(wheel.size(), oracle.size()) << "step " << step;
  }
}

TEST(TimerWheel, RearmMovesTheDeadline) {
  TimerWheel wheel(sim::kMillisecond);
  wheel.arm(7, 10 * sim::kMillisecond);
  EXPECT_TRUE(wheel.armed(7));
  wheel.arm(7, 500 * sim::kMillisecond);  // re-arm later: single entry moves
  EXPECT_EQ(wheel.size(), 1u);

  std::vector<std::uint32_t> fired;
  wheel.advance(100 * sim::kMillisecond,
                [&](std::uint32_t k) { fired.push_back(k); });
  EXPECT_TRUE(fired.empty());
  wheel.advance(500 * sim::kMillisecond,
                [&](std::uint32_t k) { fired.push_back(k); });
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_FALSE(wheel.armed(7));
}

TEST(TimerWheel, WorkIsConstantPerTimer) {
  // O(1) amortized: total work (fires + cascade relinks) stays within a
  // small constant of the number of timers, independent of how far apart
  // the deadlines sit. A heap would do O(log n) comparisons per op and a
  // naive scan O(n) per tick; neither fits this bound.
  const sim::Time g = sim::kMillisecond;
  TimerWheel wheel(g);
  constexpr std::uint32_t kTimers = 20000;
  Rng rng(7);
  for (std::uint32_t k = 0; k < kTimers; ++k) {
    // Spread across ~2^21 ticks so every level of the wheel participates.
    const sim::Time deadline =
        static_cast<sim::Time>(rng.uniform(1u << 21) + 1) * g;
    wheel.arm(k, deadline);
  }
  std::size_t fired = 0;
  wheel.advance(static_cast<sim::Time>((1u << 21) + 2) * g,
                [&](std::uint32_t) { ++fired; });
  EXPECT_EQ(fired, kTimers);
  // Each entry cascades at most once per level on its way down.
  EXPECT_LE(wheel.work_done(), static_cast<std::uint64_t>(kTimers) * 4);
}

// --- session-aware pipeline --------------------------------------------------

ServeOptions session_options() {
  ServeOptions options;
  options.name = "session_test";
  options.duration = 300 * sim::kMillisecond;
  options.traffic.rate_tps = 2000;
  options.network.seed = 77;
  options.traffic.seed = 77 ^ 0x9E3779B97F4A7C15ull;
  options.sessions.enabled = true;
  options.sessions.population = 200;
  options.sessions.zipf_s = 1.1;
  options.sessions.rate_classes = 3;
  options.sessions.idle_timeout = 40 * sim::kMillisecond;
  options.sessions.grace = 20 * sim::kMillisecond;
  options.sessions.wheel_granularity = sim::kMillisecond;
  options.sessions.bad_cert_share = 0.05;
  options.sessions.duplicate_rate = 0.01;
  options.sessions.out_of_order_rate = 0.01;
  options.sessions.preconnect = true;
  return options;
}

TEST(ServeSessions, DeterministicRerunIsByteIdentical) {
  const ServeOptions options = session_options();
  const ServeReport a = run_serve(options);
  const ServeReport b = run_serve(options);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_TRUE(a.sessions_enabled);
  EXPECT_GT(a.session_stats.opened, 0u);
}

TEST(ServeSessions, PerClassAccountingPartitionsTraffic) {
  ServeOptions options = session_options();
  const ServeReport report = run_serve(options);
  ASSERT_TRUE(report.sessions_enabled);
  ASSERT_EQ(report.class_stats.size(), 3u);

  std::uint64_t offered = 0, rejected = 0, committed = 0;
  for (const auto& c : report.class_stats) {
    offered += c.offered;
    rejected += c.rejected;
    committed += c.committed;
  }
  EXPECT_EQ(offered, report.offered);
  EXPECT_EQ(rejected, report.rejected_session);
  EXPECT_EQ(committed, report.committed_txs);
  // The zipf mix plus high_priority_share must land traffic in class 0 and
  // at least one lower class.
  EXPECT_GT(report.class_stats[0].offered, 0u);
  EXPECT_GT(report.class_stats[1].offered + report.class_stats[2].offered,
            0u);
  // The forged-handshake share must surface as session rejections.
  EXPECT_GT(report.session_stats.rejected_bad_cert, 0u);
}

TEST(ServeSessions, DisabledSessionsMatchLegacyPipeline) {
  // sessions.enabled = false must leave the pipeline bit-identical to the
  // pre-session behaviour: same report text with the session block absent.
  ServeOptions options = session_options();
  options.sessions = SessionConfig{};
  const ServeReport report = run_serve(options);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.sessions_enabled);
  EXPECT_EQ(report.rejected_session, 0u);
  EXPECT_EQ(report.to_text().find("sessions:"), std::string::npos);
}

TEST(ServeSessions, ConcurrentSigningWithSessionsStaysConsistent) {
  // The TSan-job half of the suite: endorsement signing fans out across the
  // worker pool while the session layer authenticates every arrival through
  // the shared Msp validation cache. Any locking mistake in that pairing
  // shows up here under -fsanitize=thread.
  ServeOptions options = session_options();
  options.endorse.sign_threads = 4;
  options.check_equivalence = true;
  const ServeReport report = run_serve(options);
  EXPECT_TRUE(report.ok()) << report.mismatch;
  EXPECT_TRUE(report.flags_match);
}

}  // namespace
}  // namespace bm::serve

#include <gtest/gtest.h>

#include "bmac/protocol.hpp"
#include "crypto/der.hpp"
#include "fabric/orderer.hpp"
#include "fabric/transaction.hpp"

namespace bm::bmac {
namespace {

using fabric::Block;
using fabric::Identity;
using fabric::Msp;
using fabric::Orderer;
using fabric::Role;
using fabric::TxProposal;

struct ProtocolNet {
  ProtocolNet() {
    org1 = &msp.add_org("Org1");
    org2 = &msp.add_org("Org2");
    client = org1->issue(Role::kClient, 0, "client0.org1");
    peer1 = org1->issue(Role::kPeer, 0, "peer0.org1");
    peer2 = org2->issue(Role::kPeer, 0, "peer0.org2");
    orderer = std::make_unique<Orderer>(
        org1->issue(Role::kOrderer, 0, "orderer0.org1"),
        Orderer::Config{.max_tx_per_block = 100});
  }

  Block make_block(int n_txs, int endorsements = 2) {
    for (int i = 0; i < n_txs; ++i) {
      TxProposal proposal;
      proposal.channel_id = "ch";
      proposal.chaincode_id = "smallbank";
      proposal.tx_id = "tx" + std::to_string(next_id++);
      proposal.rwset.reads.push_back({"r" + std::to_string(i), std::nullopt});
      proposal.rwset.writes.push_back({"w" + std::to_string(i), to_bytes("v")});
      std::vector<const Identity*> endorsing;
      if (endorsements >= 1) endorsing.push_back(&peer1);
      if (endorsements >= 2) endorsing.push_back(&peer2);
      orderer->submit(build_envelope(proposal, client, endorsing));
    }
    return *orderer->flush();
  }

  Msp msp;
  fabric::CertificateAuthority* org1;
  fabric::CertificateAuthority* org2;
  Identity client, peer1, peer2;
  std::unique_ptr<Orderer> orderer;
  int next_id = 0;
};

TEST(SenderIdentityCache, AssignsAndRemembersIds) {
  ProtocolNet net;
  SenderIdentityCache cache(net.msp);
  const Bytes cert = net.peer1.cert.marshal();

  const auto first = cache.lookup_or_insert(cert);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->newly_inserted);
  EXPECT_EQ(first->id.org(), 1);
  EXPECT_EQ(first->id.role(), Role::kPeer);

  const auto second = cache.lookup_or_insert(cert);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->newly_inserted);
  EXPECT_EQ(second->id, first->id);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SenderIdentityCache, RejectsUnknownOrg) {
  ProtocolNet net;
  SenderIdentityCache cache(net.msp);
  fabric::CertificateAuthority foreign("OrgX", 9);
  EXPECT_FALSE(cache.lookup_or_insert(
      foreign.issue(Role::kPeer, 0, "p").cert.marshal()).has_value());
}

TEST(HwIdentityCache, InsertAndFind) {
  ProtocolNet net;
  HwIdentityCache cache;
  const auto id = fabric::EncodedId::make(1, Role::kPeer, 0);
  EXPECT_TRUE(cache.insert(id, net.peer1.cert.marshal()));
  const auto* entry = cache.find(id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->cert.subject_cn, "peer0.org1");
  EXPECT_EQ(cache.find(fabric::EncodedId::make(3, Role::kPeer, 0)), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_FALSE(cache.insert(id, to_bytes("garbage")));
}

TEST(ProtocolSender, SectionCountsAndSizes) {
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  const Block block = net.make_block(5);
  const SendResult result = sender.send(block);

  // 1 header + 5 tx + 1 metadata + identity syncs (client, 2 peers, orderer).
  int syncs = 0, headers = 0, txs = 0, metas = 0;
  for (const auto& pkt : result.packets) {
    switch (pkt.header.section) {
      case SectionType::kIdentitySync: ++syncs; break;
      case SectionType::kHeader: ++headers; break;
      case SectionType::kTransaction: ++txs; break;
      case SectionType::kMetadata: ++metas; break;
    }
    EXPECT_EQ(pkt.header.total_sections, 7);
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(txs, 5);
  EXPECT_EQ(metas, 1);
  EXPECT_EQ(syncs, 4);
  EXPECT_EQ(result.identities_removed, 5u * 3u + 1u);  // 3 per tx + orderer
  EXPECT_GT(result.gossip_size, result.bmac_size);
}

TEST(ProtocolSender, SteadyStateBandwidthSavings) {
  // After the identity cache warms up, the paper reports blocks 3.4-5.3x
  // smaller and >= 73% of a block being identity bytes (2+ endorsements).
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  sender.send(net.make_block(10));  // warm up the cache
  const SendResult result = sender.send(net.make_block(10));
  const double ratio = static_cast<double>(result.gossip_size) /
                       static_cast<double>(result.bmac_size);
  EXPECT_GE(ratio, 3.0);
  EXPECT_LE(ratio, 6.5);
  EXPECT_GT(static_cast<double>(result.identity_bytes_removed) /
                static_cast<double>(result.gossip_size),
            0.70);
}

TEST(ProtocolReceiver, SectionReconstructionIsExact) {
  // DataRemover then DataInserter must reproduce the original section bytes
  // bit-exactly (the round-trip property of §3.2).
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  const Block block = net.make_block(3);
  const SendResult result = sender.send(block);

  HwIdentityCache cache;
  ProtocolReceiver receiver(cache);
  std::size_t tx_index = 0;
  for (const auto& pkt : result.packets) {
    if (pkt.header.section == SectionType::kIdentitySync) {
      receiver.on_packet(pkt);  // populates the cache
      continue;
    }
    if (pkt.header.section == SectionType::kTransaction) {
      const auto reconstructed =
          ProtocolReceiver::reconstruct_section(pkt, cache);
      ASSERT_TRUE(reconstructed.has_value());
      EXPECT_TRUE(equal(*reconstructed, block.envelopes[tx_index]))
          << "tx " << tx_index;
      ++tx_index;
    }
  }
  EXPECT_EQ(tx_index, 3u);
}

TEST(ProtocolReceiver, EmitsRecordsMatchingGroundTruth) {
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  const Block block = net.make_block(4);
  const SendResult result = sender.send(block);

  HwIdentityCache cache;
  ProtocolReceiver receiver(cache);
  std::vector<TxEntry> txs;
  std::vector<EndsEntry> ends;
  std::vector<RdsetEntry> reads;
  std::vector<WrsetEntry> writes;
  std::optional<BlockEntry> block_entry;
  for (const auto& pkt : result.packets) {
    auto emitted = receiver.on_packet(pkt);
    EXPECT_FALSE(emitted.error);
    for (auto& t : emitted.txs) txs.push_back(std::move(t));
    for (auto& e : emitted.ends) ends.push_back(std::move(e));
    for (auto& r : emitted.reads) reads.push_back(std::move(r));
    for (auto& w : emitted.writes) writes.push_back(std::move(w));
    if (emitted.block) block_entry = std::move(emitted.block);
  }

  ASSERT_TRUE(block_entry.has_value());
  EXPECT_EQ(block_entry->block_num, block.header.number);
  EXPECT_EQ(block_entry->tx_count, 4u);
  // Orderer signature verifies against the extracted digest/key.
  EXPECT_TRUE(block_entry->verify.execute());

  ASSERT_EQ(txs.size(), 4u);
  ASSERT_EQ(ends.size(), 8u);
  ASSERT_EQ(reads.size(), 4u);
  ASSERT_EQ(writes.size(), 4u);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto truth = fabric::parse_envelope(block.envelopes[i]);
    ASSERT_TRUE(truth.has_value());
    EXPECT_EQ(txs[i].tx_seq, i);
    EXPECT_TRUE(txs[i].parse_ok);
    EXPECT_EQ(txs[i].chaincode_id, truth->chaincode_id);
    EXPECT_EQ(txs[i].endorsement_count, 2);
    EXPECT_EQ(txs[i].read_count, 1);
    EXPECT_EQ(txs[i].write_count, 1);
    // The extracted client-signature request verifies (real ECDSA).
    EXPECT_TRUE(txs[i].verify.execute());
  }
  for (const auto& end : ends) {
    EXPECT_TRUE(end.verify.execute());
    EXPECT_TRUE(end.endorser.org() == 1 || end.endorser.org() == 2);
  }
  for (const auto& read : reads)
    EXPECT_FALSE(read.expected_version.has_value());
}

TEST(ProtocolReceiver, DetectsTamperedSignatures) {
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  Block block = net.make_block(1);
  // Corrupt the client signature inside the envelope before sending.
  block.envelopes[0].back() ^= 0x55;
  const SendResult result = sender.send(block);

  HwIdentityCache cache;
  ProtocolReceiver receiver(cache);
  std::vector<TxEntry> txs;
  for (const auto& pkt : result.packets) {
    auto emitted = receiver.on_packet(pkt);
    for (auto& t : emitted.txs) txs.push_back(std::move(t));
  }
  ASSERT_EQ(txs.size(), 1u);
  EXPECT_FALSE(txs[0].verify.execute());
}

TEST(ProtocolReceiver, MissingIdentityCacheEntryFails) {
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  const SendResult result = sender.send(net.make_block(1));

  HwIdentityCache cold_cache;  // identity syncs deliberately dropped
  ProtocolReceiver receiver(cold_cache);
  for (const auto& pkt : result.packets) {
    if (pkt.header.section == SectionType::kIdentitySync) continue;
    const auto emitted = receiver.on_packet(pkt);
    if (pkt.header.section == SectionType::kTransaction)
      EXPECT_TRUE(emitted.error);  // reconstruction impossible
  }
}

TEST(ProtocolReceiver, AnnotationOffsetsAlwaysInBounds) {
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  const SendResult result = sender.send(net.make_block(6));
  HwIdentityCache cache;
  for (const auto& pkt : result.packets) {
    if (pkt.header.section == SectionType::kIdentitySync) {
      cache.insert(pkt.annotations[0].id, pkt.payload);
      continue;
    }
    const auto reconstructed = ProtocolReceiver::reconstruct_section(pkt, cache);
    ASSERT_TRUE(reconstructed.has_value());
    for (const auto& a : pkt.annotations) {
      if (a.kind == Annotation::Kind::kPointer)
        EXPECT_LE(a.offset + a.length, reconstructed->size());
      else
        EXPECT_LE(a.offset + 2, pkt.payload.size());
    }
  }
}

TEST(ProtocolSender, IdentitySyncOnlyOnFirstAppearance) {
  ProtocolNet net;
  ProtocolSender sender(net.msp);
  const SendResult first = sender.send(net.make_block(2));
  const SendResult second = sender.send(net.make_block(2));
  int syncs_second = 0;
  for (const auto& pkt : second.packets)
    if (pkt.header.section == SectionType::kIdentitySync) ++syncs_second;
  EXPECT_EQ(syncs_second, 0);
  EXPECT_LT(second.bmac_size, first.bmac_size);
}

}  // namespace
}  // namespace bm::bmac

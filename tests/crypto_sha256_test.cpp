#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace bm::crypto {
namespace {

std::string digest_hex(const Digest& d) { return hex_encode(digest_view(d)); }

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, FipsVectors) {
  EXPECT_EQ(digest_hex(sha256(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(digest_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(digest_hex(sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(
      digest_hex(sha256(to_bytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShotAtEverySplit) {
  const Bytes msg = Rng(5).bytes(300);
  const Digest expected = sha256(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 13) {
    Sha256 h;
    h.update(ByteView(msg).subspan(0, split));
    h.update(ByteView(msg).subspan(split));
    EXPECT_EQ(h.finish(), expected) << "split=" << split;
  }
}

TEST(Sha256, ManySmallUpdates) {
  const Bytes msg = Rng(6).bytes(257);
  Sha256 h;
  for (std::uint8_t byte : msg) h.update(ByteView(&byte, 1));
  EXPECT_EQ(h.finish(), sha256(msg));
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, BoundaryLengths) {
  // Messages near the 64-byte block and 56-byte padding boundaries.
  Rng rng(7);
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg = rng.bytes(len);
    Sha256 a;
    a.update(ByteView(msg).subspan(0, len / 2));
    a.update(ByteView(msg).subspan(len / 2));
    EXPECT_EQ(a.finish(), sha256(msg)) << "len=" << len;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  Rng rng(8);
  const Bytes a = rng.bytes(40);
  Bytes b = a;
  b[20] ^= 1;
  EXPECT_NE(sha256(a), sha256(b));
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest d = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(digest_hex(d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const Digest d = hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(digest_hex(d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);
  const Digest d = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(digest_hex(d),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, PartsMatchesConcatenation) {
  Rng rng(9);
  const Bytes key = rng.bytes(32);
  const Bytes a = rng.bytes(10), b = rng.bytes(20), c = rng.bytes(5);
  EXPECT_EQ(hmac_sha256_parts(key, {a, b, c}),
            hmac_sha256(key, concat({a, b, c})));
}

}  // namespace
}  // namespace bm::crypto

// The fault-injection layer (net/faults.hpp): determinism, the
// Gilbert–Elliott burst channel, the corruption split, duplication /
// reordering / partitions, and the JSON scenario loader (including the
// shipped configs/faults_*.json files).
#include <gtest/gtest.h>

#include <fstream>

#include "net/faults.hpp"

namespace bm::net {
namespace {

FaultConfig bursty(std::uint64_t seed = 7) {
  FaultConfig config;
  config.loss_good = 0.01;
  config.loss_bad = 0.6;
  config.p_good_to_bad = 0.05;
  config.p_bad_to_good = 0.25;
  config.seed = seed;
  return config;
}

TEST(FaultInjector, DeterministicScheduleForSeedAndConfig) {
  FaultConfig config = bursty();
  config.corrupt_detectable = 0.02;
  config.corrupt_silent = 0.02;
  config.duplicate = 0.03;
  config.reorder = 0.05;
  config.delay_spike = 0.01;

  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 5000; ++i) {
    const auto va = a.assess(i * 1000, 512);
    const auto vb = b.assess(i * 1000, 512);
    ASSERT_EQ(static_cast<int>(va.drop), static_cast<int>(vb.drop)) << i;
    ASSERT_EQ(va.corrupt_silent, vb.corrupt_silent) << i;
    ASSERT_EQ(va.corrupt_offset, vb.corrupt_offset) << i;
    ASSERT_EQ(va.corrupt_mask, vb.corrupt_mask) << i;
    ASSERT_EQ(va.duplicate, vb.duplicate) << i;
    ASSERT_EQ(va.extra_delay, vb.extra_delay) << i;
  }
  EXPECT_EQ(a.stats().dropped_loss, b.stats().dropped_loss);
  EXPECT_EQ(a.stats().corrupted_silent, b.stats().corrupted_silent);

  // A different seed produces a different schedule.
  FaultInjector c(bursty(8));
  bool diverged = false;
  FaultInjector d(bursty(7));
  for (int i = 0; i < 2000 && !diverged; ++i)
    diverged = c.assess(i * 1000, 512).dropped() !=
               d.assess(i * 1000, 512).dropped();
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, GilbertElliottLossesArriveInBursts) {
  FaultInjector injector(bursty());
  int drops = 0, frames = 20000, runs = 0, current_run = 0;
  int longest_run = 0;
  for (int i = 0; i < frames; ++i) {
    if (injector.assess(i * 1000, 512).dropped()) {
      ++drops;
      ++current_run;
      longest_run = std::max(longest_run, current_run);
    } else {
      if (current_run > 0) ++runs;
      current_run = 0;
    }
  }
  // Stationary bad fraction 0.05/(0.05+0.25) = 1/6 => ~10.8% average loss.
  const double rate = static_cast<double>(drops) / frames;
  EXPECT_GT(rate, 0.07);
  EXPECT_LT(rate, 0.15);
  // Burstiness: mean run length well above the i.i.d. expectation (~1.1)
  // and at least one long burst.
  const double mean_run = static_cast<double>(drops) / std::max(runs, 1);
  EXPECT_GT(mean_run, 1.3);
  EXPECT_GE(longest_run, 4);
  EXPECT_GT(injector.stats().bad_state_frames, 0u);
}

TEST(FaultInjector, CorruptionSplitsIntoDetectedAndSilent) {
  FaultConfig config;
  config.corrupt_detectable = 0.1;
  config.corrupt_silent = 0.1;
  config.seed = 11;
  FaultInjector injector(config);
  int dropped = 0, silent = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = injector.assess(i * 1000, 256);
    if (v.drop == FaultInjector::DropReason::kCorrupt) ++dropped;
    if (v.corrupt_silent) {
      ++silent;
      EXPECT_LT(v.corrupt_offset, 256u);
      EXPECT_NE(v.corrupt_mask, 0);  // XOR with zero would be a no-op
    }
  }
  EXPECT_GT(dropped, 700);
  EXPECT_GT(silent, 700);
  EXPECT_EQ(injector.stats().dropped_corrupt, static_cast<std::uint64_t>(dropped));
  EXPECT_EQ(injector.stats().corrupted_silent, static_cast<std::uint64_t>(silent));
}

TEST(FaultInjector, PartitionWindowsBlackholeEverything) {
  FaultConfig config;
  config.partitions.push_back(
      {10 * sim::kMillisecond, 20 * sim::kMillisecond});
  config.seed = 3;
  FaultInjector injector(config);
  EXPECT_FALSE(injector.in_partition(9 * sim::kMillisecond));
  EXPECT_TRUE(injector.in_partition(10 * sim::kMillisecond));
  EXPECT_TRUE(injector.in_partition(19 * sim::kMillisecond));
  EXPECT_FALSE(injector.in_partition(20 * sim::kMillisecond));

  for (int i = 0; i < 100; ++i) {
    const sim::Time t = 10 * sim::kMillisecond + i * 100 * sim::kMicrosecond;
    EXPECT_EQ(static_cast<int>(injector.assess(t, 64).drop),
              static_cast<int>(FaultInjector::DropReason::kPartition));
  }
  const auto after = injector.assess(25 * sim::kMillisecond, 64);
  EXPECT_FALSE(after.dropped());
  EXPECT_EQ(injector.stats().dropped_partition, 100u);
}

TEST(FaultyChannel, DeliversCorruptsAndDuplicatesDeterministically) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    net::Link link(sim, {});
    FaultConfig config;
    config.loss_good = config.loss_bad = 0.1;
    config.corrupt_silent = 0.1;
    config.duplicate = 0.1;
    config.seed = seed;
    FaultyChannel channel(sim, link, config);
    std::vector<Bytes> received;
    channel.set_receiver([&](Bytes frame) { received.push_back(std::move(frame)); });
    for (int i = 0; i < 500; ++i) {
      Bytes frame(64, static_cast<std::uint8_t>(i));
      channel.send(std::move(frame));
    }
    sim.run();
    return received;
  };
  const auto a = run(5);
  const auto b = run(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
  // Loss removed some frames, duplication added others; corruption flipped
  // exactly one byte in some delivered frames.
  EXPECT_NE(a.size(), 500u);
  int corrupted = 0;
  for (const Bytes& frame : a) {
    int flipped = 0;
    for (std::size_t j = 1; j < frame.size(); ++j)
      if (frame[j] != frame[0]) ++flipped;
    // Either intact (all bytes equal) or exactly one byte differs — unless
    // byte 0 itself was flipped, in which case all others "differ".
    if (flipped == 1 || flipped == static_cast<int>(frame.size()) - 1)
      ++corrupted;
    else
      EXPECT_EQ(flipped, 0);
  }
  EXPECT_GT(corrupted, 0);
}

TEST(FaultScenario, ParsesFullSchema) {
  const char* text = R"({
    "name": "test",
    "seed": 99,
    "data": {
      "loss": {"good": 0.01, "bad": 0.5, "p_good_to_bad": 0.02,
               "p_bad_to_good": 0.3},
      "corrupt": {"detectable": 0.03, "silent": 0.04},
      "duplicate": 0.05,
      "reorder": {"probability": 0.06, "hold_max_us": 250},
      "delay_spike": {"probability": 0.07, "magnitude_us": 1500},
      "partitions_ms": [[10, 20], [50, 60]]
    },
    "ack": {
      "loss": {"good": 0.08, "bad": 0.08}
    }
  })";
  std::string error;
  const auto scenario = parse_fault_scenario(text, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->name, "test");
  EXPECT_EQ(scenario->data.seed, 99u);
  EXPECT_NE(scenario->ack.seed, 99u);  // decorrelated
  EXPECT_DOUBLE_EQ(scenario->data.loss_good, 0.01);
  EXPECT_DOUBLE_EQ(scenario->data.loss_bad, 0.5);
  EXPECT_DOUBLE_EQ(scenario->data.p_good_to_bad, 0.02);
  EXPECT_DOUBLE_EQ(scenario->data.p_bad_to_good, 0.3);
  EXPECT_DOUBLE_EQ(scenario->data.corrupt_detectable, 0.03);
  EXPECT_DOUBLE_EQ(scenario->data.corrupt_silent, 0.04);
  EXPECT_DOUBLE_EQ(scenario->data.duplicate, 0.05);
  EXPECT_DOUBLE_EQ(scenario->data.reorder, 0.06);
  EXPECT_EQ(scenario->data.reorder_hold_max, 250 * sim::kMicrosecond);
  EXPECT_DOUBLE_EQ(scenario->data.delay_spike, 0.07);
  EXPECT_EQ(scenario->data.delay_spike_magnitude, 1500 * sim::kMicrosecond);
  ASSERT_EQ(scenario->data.partitions.size(), 2u);
  EXPECT_EQ(scenario->data.partitions[0].start, 10 * sim::kMillisecond);
  EXPECT_EQ(scenario->data.partitions[1].end, 60 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(scenario->ack.loss_good, 0.08);
  EXPECT_TRUE(scenario->data.any());
  EXPECT_TRUE(scenario->ack.any());
}

TEST(FaultScenario, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_fault_scenario("[1,2,3]", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      parse_fault_scenario(R"({"data": {"duplicate": "high"}})", &error)
          .has_value());
  EXPECT_FALSE(
      parse_fault_scenario(R"({"data": {"partitions_ms": [[20, 10]]}})",
                           &error)
          .has_value());
  EXPECT_FALSE(load_fault_scenario("/nonexistent/faults.json", &error)
                   .has_value());
}

TEST(FaultScenario, ShippedConfigsParse) {
  const char* names[] = {"faults_burst.json", "faults_corrupt.json",
                         "faults_reorder.json", "faults_partition.json"};
  for (const char* name : names) {
    const std::string path = std::string(BM_REPO_ROOT) + "/configs/" + name;
    std::string error;
    const auto scenario = load_fault_scenario(path, &error);
    ASSERT_TRUE(scenario.has_value()) << path << ": " << error;
    EXPECT_FALSE(scenario->name.empty()) << path;
    EXPECT_TRUE(scenario->data.any()) << path;
  }
}

TEST(FaultConfigAdapter, UniformLossMatchesDeprecatedKnob) {
  const FaultConfig config = FaultConfig::uniform_loss(0.25, 42);
  EXPECT_DOUBLE_EQ(config.loss_good, 0.25);
  EXPECT_DOUBLE_EQ(config.loss_bad, 0.25);
  EXPECT_DOUBLE_EQ(config.p_good_to_bad, 0.0);
  EXPECT_TRUE(config.any());
  FaultInjector injector(config);
  int drops = 0;
  for (int i = 0; i < 10000; ++i)
    if (injector.assess(i, 100).dropped()) ++drops;
  EXPECT_GT(drops, 2200);
  EXPECT_LT(drops, 2800);
}

}  // namespace
}  // namespace bm::net

// Full-network integration: the paper's compatibility goal (§1) —
// "any validator peer with hardware accelerator must be compatible with the
// software-only endorser peers and orderers".
//
// The Fig. 5 topology end to end, over simulated transports:
//   Raft ordering service (3 orderers) -> blocks
//     -> Gossip (TCP model) to two software validator peers
//     -> BMac protocol (UDP model, Go-Back-N, lossy link) to the BMac peer
// All three peers must commit identical chains. The BMac peer joining the
// network changes nothing for the software peers — the orderer sends
// through BOTH protocols.
#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "bmac/reliable.hpp"
#include "fabric/raft.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"
#include "net/faults.hpp"
#include "net/transport.hpp"
#include "workload/chaincode.hpp"

namespace bm {
namespace {

using namespace bm::fabric;

struct SwPeer {
  StateDb db;
  Ledger ledger;
  std::unique_ptr<ValidatorBackend> validator;  ///< any conforming backend
  std::vector<Block> delivered;  ///< blocks received via Gossip, in order

  void process_delivered() {
    for (const Block& block : delivered)
      validator->validate_and_commit(block, db, ledger);
    delivered.clear();
  }
};

TEST(IntegrationNetwork, MixedPeersCommitIdenticalChains) {
  // --- network identities ---------------------------------------------------
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  auto& org2 = msp.add_org("Org2");
  const Identity client = org1.issue(Role::kClient, 0, "client0.org1");
  const Identity endorser1 = org1.issue(Role::kPeer, 0, "peer0.org1");
  const Identity endorser2 = org2.issue(Role::kPeer, 0, "peer0.org2");
  std::vector<Identity> orderers;
  for (int i = 0; i < 3; ++i)
    orderers.push_back(org1.issue(Role::kOrderer, static_cast<std::uint8_t>(i),
                                  "orderer" + std::to_string(i) + ".org1"));

  std::map<std::string, EndorsementPolicy> policies;
  policies.emplace("smallbank",
                   parse_policy_or_throw("2-outof-2 orgs", msp.org_names()));

  sim::Simulation sim;

  // --- ordering service (Raft, 3 nodes) -------------------------------------
  RaftOrderingService::Config raft_config;
  raft_config.nodes = 3;
  raft_config.max_tx_per_block = 5;
  RaftOrderingService ordering(sim, raft_config, orderers);

  // --- peers -----------------------------------------------------------------
  // One peer runs the plain software backend, the other the cached variant:
  // the cross-peer chain equality below is itself a backend-swap check.
  SwPeer sw_org1, sw_org2;
  sw_org1.validator = make_software_backend(msp, policies);
  sw_org2.validator = make_software_backend(
      msp, policies,
      {.parallelism = 1, .verify_cache_capacity = 1024});

  bmac::HwConfig hw;
  hw.tx_validators = 4;
  bmac::BmacPeer bmac_peer(sim, msp, hw, policies);
  bmac_peer.start();
  bmac::ProtocolSender protocol(msp);

  // --- transports -------------------------------------------------------------
  net::Link gossip_link1(sim, {.gbps = 1.0, .seed = 21});
  net::Link gossip_link2(sim, {.gbps = 1.0, .seed = 22});
  net::TcpStream gossip1(sim, gossip_link1, {});
  net::TcpStream gossip2(sim, gossip_link2, {});
  // The BMac path crosses a lossy channel with Go-Back-N on top (loss
  // injected by the fault layer; the links themselves are lossless).
  net::Link bmac_link(sim, {.gbps = 1.0, .seed = 23});
  net::Link ack_link(sim, {.gbps = 1.0, .seed = 24});
  net::FaultyChannel bmac_channel(
      sim, bmac_link, net::FaultConfig::uniform_loss(0.05, /*seed=*/23));
  net::FaultyChannel ack_channel(
      sim, ack_link, net::FaultConfig::uniform_loss(0.05, /*seed=*/24));

  std::unique_ptr<bmac::GbnSender> gbn_sender;
  bmac::GbnReceiver gbn_receiver(
      [&](Bytes payload) {
        auto packet = bmac::BmacPacket::decode(payload);
        ASSERT_TRUE(packet.has_value());
        bmac_peer.deliver_packet(std::move(*packet));
      },
      [&](std::uint64_t next) { ack_channel.send(bmac::encode_ack(next)); });
  bmac_channel.set_receiver([&](Bytes wire) { gbn_receiver.on_wire(wire); });
  ack_channel.set_receiver([&](Bytes wire) {
    if (const auto next = bmac::decode_ack(wire)) gbn_sender->on_ack(*next);
  });
  gbn_sender = std::make_unique<bmac::GbnSender>(
      sim, bmac::GbnSender::Config{},
      [&](const bmac::SequencedFrame& frame) {
        bmac_channel.send(frame.encode());
      });

  // --- block dissemination: lead orderer sends through BOTH protocols -------
  std::vector<Block> emitted;
  ordering.set_block_callback([&](Block block) {
    // §3.5: Send() is called right before the block goes out via Gossip.
    for (const auto& packet : protocol.send(block).packets)
      gbn_sender->send(packet.encode());
    bmac_peer.deliver_block(block);

    const std::size_t gossip_bytes = block.marshaled_size();
    // Deliver the block object on arrival of the last TCP segment.
    auto deliver1 = [&, block] { sw_org1.delivered.push_back(block); };
    auto deliver2 = [&, block] { sw_org2.delivered.push_back(block); };
    gossip1.send_message(gossip_bytes, deliver1);
    gossip2.send_message(gossip_bytes, deliver2);
    emitted.push_back(std::move(block));
  });
  ordering.start();

  // Wait for leader election.
  for (int i = 0; i < 100 && ordering.leader() < 0; ++i)
    sim.run_until(sim.now() + 100 * sim::kMillisecond);
  ASSERT_GE(ordering.leader(), 0);

  // --- workload: clients endorse against committed endorsement state --------
  StateDb endorsement_state;
  SoftwareValidator endorsement_committer(msp, policies);
  Ledger endorsement_ledger;
  workload::SmallbankChaincode chaincode({.accounts = 64});
  Rng rng(5);
  int tx_id = 0;
  for (int i = 0; i < 20; ++i) {
    auto executed = chaincode.execute(rng, endorsement_state);
    TxProposal proposal;
    proposal.channel_id = "mychannel";
    proposal.chaincode_id = "smallbank";
    proposal.tx_id = "tx" + std::to_string(tx_id++);
    proposal.rwset = std::move(executed.rwset);
    ASSERT_TRUE(ordering.submit(
        build_envelope(proposal, client, {&endorser1, &endorser2})));
    sim.run_until(sim.now() + 20 * sim::kMillisecond);
  }
  // Drain the network: the Raft heartbeat timers run forever, so a full
  // sim.run() would never return — advance bounded wall-clock instead.
  sim.run_until(sim.now() + 10 * sim::kSecond);

  // The committed chain feeds endorsement state for realistic versions in a
  // longer-running scenario; here just verify dissemination completeness.
  ASSERT_EQ(emitted.size(), 4u);  // 20 txs / 5 per block

  // --- software peers process their gossip queues ----------------------------
  sw_org1.process_delivered();
  sw_org2.process_delivered();
  (void)endorsement_committer;
  (void)endorsement_ledger;

  // --- the consistency check across all three peers --------------------------
  ASSERT_EQ(sw_org1.ledger.height(), 4u);
  ASSERT_EQ(sw_org2.ledger.height(), 4u);
  ASSERT_EQ(bmac_peer.ledger().height(), 4u);
  for (std::uint64_t b = 0; b < 4; ++b) {
    EXPECT_EQ(sw_org1.ledger.at(b).commit_hash, sw_org2.ledger.at(b).commit_hash);
    EXPECT_EQ(sw_org1.ledger.at(b).commit_hash,
              bmac_peer.ledger().at(b).commit_hash);
    EXPECT_EQ(sw_org1.ledger.at(b).block.metadata.tx_flags,
              bmac_peer.ledger().at(b).block.metadata.tx_flags);
  }
  // World state identical (hardware store vs software LevelDB model).
  EXPECT_EQ(sw_org1.db.size(), sw_org2.db.size());
  EXPECT_EQ(sw_org1.db.size(), bmac_peer.processor().statedb().size());

  // The lossy BMac path actually exercised retransmission.
  EXPECT_GT(gbn_sender->stats().retransmissions, 0u);
}

}  // namespace
}  // namespace bm

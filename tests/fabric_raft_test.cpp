#include <gtest/gtest.h>

#include "fabric/raft.hpp"
#include "fabric/transaction.hpp"
#include "fabric/validator.hpp"

namespace bm::fabric {
namespace {

struct RaftHarness {
  explicit RaftHarness(int nodes, double loss = 0.0, std::uint64_t seed = 1) {
    RaftOrderingService::Config config;
    config.nodes = nodes;
    config.max_tx_per_block = 3;
    config.message_loss = loss;
    config.seed = seed;
    build(config);
  }

  /// Full-config variant for transport-fault / partition scenarios.
  explicit RaftHarness(RaftOrderingService::Config config) { build(config); }

  void build(RaftOrderingService::Config config) {
    auto& org = msp.add_org("Org1");
    std::vector<Identity> identities;
    for (int i = 0; i < config.nodes; ++i)
      identities.push_back(org.issue(Role::kOrderer,
                                     static_cast<std::uint8_t>(i),
                                     "orderer" + std::to_string(i) + ".org1"));
    service = std::make_unique<RaftOrderingService>(sim, config,
                                                    std::move(identities));
    service->set_block_callback(
        [this](Block block) { blocks.push_back(std::move(block)); });
    service->start();
  }

  /// Run until a leader exists (bounded).
  bool elect() {
    for (int i = 0; i < 100 && service->leader() < 0; ++i)
      sim.run_until(sim.now() + 100 * sim::kMillisecond);
    return service->leader() >= 0;
  }

  Msp msp;
  sim::Simulation sim;
  std::unique_ptr<RaftOrderingService> service;
  std::vector<Block> blocks;
};

TEST(Raft, ElectsExactlyOneLeader) {
  RaftHarness harness(3);
  ASSERT_TRUE(harness.elect());
  int leaders = 0;
  for (std::size_t i = 0; i < harness.service->node_count(); ++i)
    if (harness.service->node(static_cast<int>(i)).role() == RaftRole::kLeader)
      ++leaders;
  EXPECT_EQ(leaders, 1);
}

TEST(Raft, SingleNodeClusterSelfElects) {
  RaftHarness harness(1);
  ASSERT_TRUE(harness.elect());
  EXPECT_EQ(harness.service->leader(), 0);
  EXPECT_TRUE(harness.service->submit(to_bytes("tx")));
}

TEST(Raft, ReplicatesAndCommitsEntries) {
  RaftHarness harness(3);
  ASSERT_TRUE(harness.elect());
  for (int i = 0; i < 9; ++i)
    ASSERT_TRUE(harness.service->submit(to_bytes("env" + std::to_string(i))));
  harness.sim.run_until(harness.sim.now() + sim::kSecond);

  // All nodes committed all 9 entries, identically.
  for (std::size_t n = 0; n < harness.service->node_count(); ++n) {
    const auto& node = harness.service->node(static_cast<int>(n));
    EXPECT_EQ(node.commit_index(), 9u) << "node " << n;
    for (std::uint64_t i = 1; i <= 9; ++i)
      EXPECT_EQ(to_string(node.log_at(i).payload),
                "env" + std::to_string(i - 1));
  }
  // Block cutter (batch 3): three blocks from the lead orderer.
  EXPECT_EQ(harness.blocks.size(), 3u);
  EXPECT_EQ(harness.blocks[0].tx_count(), 3u);
  EXPECT_EQ(harness.blocks[2].header.number, 2u);
}

TEST(Raft, SurvivesMessageLoss) {
  RaftHarness harness(3, /*loss=*/0.10, /*seed=*/5);
  ASSERT_TRUE(harness.elect());
  for (int i = 0; i < 6; ++i) {
    // Under loss, the leader may change; retry submission.
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (harness.service->submit(to_bytes("env" + std::to_string(i)))) break;
      harness.sim.run_until(harness.sim.now() + 100 * sim::kMillisecond);
    }
  }
  harness.sim.run_until(harness.sim.now() + 5 * sim::kSecond);
  const int lead = harness.service->leader();
  ASSERT_GE(lead, 0);
  EXPECT_GE(harness.service->node(lead).commit_index(), 6u);
}

TEST(Raft, LeaderFailureTriggersReElection) {
  RaftHarness harness(3);
  ASSERT_TRUE(harness.elect());
  const int first_leader = harness.service->leader();
  ASSERT_TRUE(harness.service->submit(to_bytes("pre-crash")));
  harness.sim.run_until(harness.sim.now() + 500 * sim::kMillisecond);

  harness.service->stop_node(first_leader);
  ASSERT_TRUE(harness.elect());
  const int second_leader = harness.service->leader();
  EXPECT_NE(second_leader, first_leader);

  // The new leader still carries the committed entry and keeps ordering.
  EXPECT_GE(harness.service->node(second_leader).commit_index(), 1u);
  ASSERT_TRUE(harness.service->submit(to_bytes("post-crash")));
  harness.sim.run_until(harness.sim.now() + sim::kSecond);
  EXPECT_GE(harness.service->node(second_leader).commit_index(), 2u);
}

TEST(Raft, RecoveredNodeCatchesUp) {
  RaftHarness harness(3);
  ASSERT_TRUE(harness.elect());
  const int leader = harness.service->leader();
  const int victim = (leader + 1) % 3;
  harness.service->stop_node(victim);

  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(harness.service->submit(to_bytes("env" + std::to_string(i))));
  harness.sim.run_until(harness.sim.now() + sim::kSecond);

  harness.service->restart_node(victim);
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);
  EXPECT_EQ(harness.service->node(victim).commit_index(), 6u);
  for (std::uint64_t i = 1; i <= 6; ++i)
    EXPECT_EQ(to_string(harness.service->node(victim).log_at(i).payload),
              "env" + std::to_string(i - 1));
}

TEST(Raft, LogsStayConsistentAcrossNodes) {
  RaftHarness harness(5, /*loss=*/0.05, /*seed=*/11);
  ASSERT_TRUE(harness.elect());
  for (int i = 0; i < 12; ++i) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (harness.service->submit(to_bytes("e" + std::to_string(i)))) break;
      harness.sim.run_until(harness.sim.now() + 50 * sim::kMillisecond);
    }
  }
  harness.sim.run_until(harness.sim.now() + 5 * sim::kSecond);

  // Raft safety: committed prefixes agree everywhere.
  std::uint64_t min_commit = ~0ull;
  for (std::size_t n = 0; n < harness.service->node_count(); ++n)
    min_commit = std::min(
        min_commit, harness.service->node(static_cast<int>(n)).commit_index());
  EXPECT_GE(min_commit, 1u);
  for (std::uint64_t i = 1; i <= min_commit; ++i) {
    const auto& reference = harness.service->node(0).log_at(i);
    for (std::size_t n = 1; n < harness.service->node_count(); ++n) {
      const auto& entry =
          harness.service->node(static_cast<int>(n)).log_at(i);
      EXPECT_EQ(entry.term, reference.term) << "index " << i;
      EXPECT_TRUE(equal(entry.payload, reference.payload)) << "index " << i;
    }
  }
}

/// Raft safety invariant, reusable across the fault-scenario tests below:
/// every node's committed prefix matches node 0's, entry by entry.
void expect_committed_prefixes_agree(RaftOrderingService& service) {
  std::uint64_t min_commit = ~0ull;
  for (std::size_t n = 0; n < service.node_count(); ++n)
    min_commit =
        std::min(min_commit, service.node(static_cast<int>(n)).commit_index());
  for (std::uint64_t i = 1; i <= min_commit; ++i) {
    const auto& reference = service.node(0).log_at(i);
    for (std::size_t n = 1; n < service.node_count(); ++n) {
      const auto& entry = service.node(static_cast<int>(n)).log_at(i);
      EXPECT_EQ(entry.term, reference.term) << "index " << i;
      EXPECT_TRUE(equal(entry.payload, reference.payload)) << "index " << i;
    }
  }
}

TEST(Raft, LivenessSoakUnderBurstLoss) {
  // Gilbert–Elliott burst loss on the transport (Config::faults), far
  // nastier than i.i.d. message_loss: whole heartbeat rounds die together,
  // forcing spurious elections mid-stream. The cluster must keep committing,
  // the committed prefixes must never diverge, and the emitted block stream
  // must never fork.
  RaftOrderingService::Config config;
  config.nodes = 5;
  config.max_tx_per_block = 3;
  config.seed = 29;
  config.faults.loss_good = 0.02;
  config.faults.loss_bad = 0.6;
  config.faults.p_good_to_bad = 0.04;
  config.faults.p_bad_to_good = 0.15;
  config.faults.seed = 37;
  RaftHarness harness(config);
  ASSERT_TRUE(harness.elect());

  for (int i = 0; i < 24; ++i) {
    // Leadership churns under bursts; retry like a Fabric client would.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (harness.service->submit(to_bytes("soak" + std::to_string(i)))) break;
      harness.sim.run_until(harness.sim.now() + 50 * sim::kMillisecond);
    }
    harness.sim.run_until(harness.sim.now() + 20 * sim::kMillisecond);
  }
  harness.sim.run_until(harness.sim.now() + 10 * sim::kSecond);

  // Liveness: the cluster made real progress despite the bursts.
  const int lead = harness.service->leader();
  ASSERT_GE(lead, 0);
  EXPECT_GE(harness.service->node(lead).commit_index(), 12u);
  EXPECT_GE(harness.service->blocks_emitted(), 4u);

  // Safety: no divergence, no forked emission, ever.
  expect_committed_prefixes_agree(*harness.service);
  EXPECT_EQ(harness.service->forks_detected(), 0u);

  // The injector really ran (burst machine visited the bad state).
  const net::FaultStats* stats = harness.service->fault_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->dropped_loss, 0u);
  EXPECT_GT(stats->bad_state_frames, 0u);
}

TEST(Raft, MinorityLeaderStepsDownAcrossPartitionWindow) {
  // Scheduled partition window with the current leader caught on the
  // minority side: the majority must elect a replacement during the window,
  // and after the heal the deposed leader must step down to the higher term
  // instead of splitting the log.
  RaftOrderingService::Config config;
  config.nodes = 5;
  config.max_tx_per_block = 3;
  config.seed = 41;
  RaftHarness harness(config);
  ASSERT_TRUE(harness.elect());
  const int old_leader = harness.service->leader();
  const std::uint64_t old_term = harness.service->node(old_leader).term();

  // An entry committed before the window must survive everywhere after it.
  ASSERT_TRUE(harness.service->submit(to_bytes("pre-partition")));
  harness.sim.run_until(harness.sim.now() + 500 * sim::kMillisecond);
  ASSERT_GE(harness.service->node(old_leader).commit_index(), 1u);

  const int fellow = (old_leader + 1) % config.nodes;
  const sim::Time start = harness.sim.now() + 100 * sim::kMillisecond;
  const sim::Time end = start + 3 * sim::kSecond;
  harness.service->add_partition(start, end, {old_leader, fellow});
  harness.sim.run_until(end);

  // During the window the majority side elected a replacement; the stranded
  // leader (no quorum) could not have committed anything new.
  int majority_leader = -1;
  for (int n = 0; n < config.nodes; ++n) {
    if (n == old_leader || n == fellow) continue;
    if (harness.service->node(n).role() == RaftRole::kLeader)
      majority_leader = n;
  }
  ASSERT_GE(majority_leader, 0) << "majority side must elect during window";
  EXPECT_GT(harness.service->node(majority_leader).term(), old_term);
  EXPECT_GT(harness.service->partition_drops(), 0u);
  EXPECT_EQ(harness.service->node(old_leader).commit_index(), 1u);

  // Heal and settle: the old leader sees the higher term and steps down.
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);
  EXPECT_NE(harness.service->node(old_leader).role(), RaftRole::kLeader);
  int leaders = 0;
  for (int n = 0; n < config.nodes; ++n)
    if (harness.service->node(n).role() == RaftRole::kLeader) ++leaders;
  EXPECT_EQ(leaders, 1);

  // Post-heal the reunified cluster keeps ordering, and nothing diverged.
  ASSERT_TRUE(harness.service->submit(to_bytes("post-heal")));
  harness.sim.run_until(harness.sim.now() + sim::kSecond);
  for (std::size_t n = 0; n < harness.service->node_count(); ++n)
    EXPECT_GE(harness.service->node(static_cast<int>(n)).commit_index(), 2u)
        << "node " << n;
  expect_committed_prefixes_agree(*harness.service);
  EXPECT_EQ(harness.service->forks_detected(), 0u);
}

TEST(Raft, OrderedBlocksValidateEndToEnd) {
  // Raft-ordered blocks with real envelopes pass the software validator —
  // the ordering service substrate plugs into the rest of the system.
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  auto& org2 = msp.add_org("Org2");
  const Identity client = org1.issue(Role::kClient, 0, "c0");
  const Identity peer1 = org1.issue(Role::kPeer, 0, "p1");
  const Identity peer2 = org2.issue(Role::kPeer, 0, "p2");
  std::vector<Identity> orderers;
  for (int i = 0; i < 3; ++i)
    orderers.push_back(org1.issue(Role::kOrderer,
                                  static_cast<std::uint8_t>(i),
                                  "orderer" + std::to_string(i)));

  sim::Simulation sim;
  RaftOrderingService::Config config;
  config.nodes = 3;
  config.max_tx_per_block = 4;
  RaftOrderingService service(sim, config, std::move(orderers));
  std::vector<Block> blocks;
  service.set_block_callback([&](Block b) { blocks.push_back(std::move(b)); });
  service.start();
  for (int i = 0; i < 50 && service.leader() < 0; ++i)
    sim.run_until(sim.now() + 100 * sim::kMillisecond);
  ASSERT_GE(service.leader(), 0);

  for (int i = 0; i < 8; ++i) {
    TxProposal proposal;
    proposal.channel_id = "ch";
    proposal.chaincode_id = "smallbank";
    proposal.tx_id = "tx" + std::to_string(i);
    proposal.rwset.writes.push_back({"k" + std::to_string(i), to_bytes("v")});
    ASSERT_TRUE(service.submit(build_envelope(proposal, client,
                                              {&peer1, &peer2})));
  }
  sim.run_until(sim.now() + sim::kSecond);
  ASSERT_EQ(blocks.size(), 2u);

  std::map<std::string, EndorsementPolicy> policies;
  policies.emplace("smallbank",
                   parse_policy_or_throw("Org1 & Org2", msp.org_names()));
  SoftwareValidator validator(msp, policies);
  StateDb db;
  Ledger ledger;
  for (const auto& block : blocks) {
    const auto result = validator.validate_and_commit(block, db, ledger);
    EXPECT_TRUE(result.block_valid);
    EXPECT_EQ(result.valid_tx_count, 4u);
  }
  EXPECT_EQ(db.size(), 8u);
}

}  // namespace
}  // namespace bm::fabric

#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "bmac/reliable.hpp"
#include "common/rng.hpp"
#include "net/faults.hpp"
#include "net/link.hpp"
#include "workload/network_harness.hpp"

namespace bm::bmac {
namespace {

/// Loopback harness over the real byte path: sender frames are encoded and
/// traverse a FaultyChannel (uniform loss) to the receiver's on_wire();
/// CRC-protected ACKs travel back over a second lossy channel.
struct GbnHarness {
  explicit GbnHarness(double loss, std::uint64_t seed = 1,
                      GbnSender::Config config = {})
      : data_link(sim, {.gbps = 1.0,
                        .propagation = 100 * sim::kMicrosecond}),
        ack_link(sim, {.gbps = 1.0,
                       .propagation = 100 * sim::kMicrosecond}),
        data(sim, data_link, net::FaultConfig::uniform_loss(loss, seed)),
        ack(sim, ack_link, net::FaultConfig::uniform_loss(loss, seed + 1)),
        receiver([this](Bytes payload) { delivered.push_back(std::move(payload)); },
                 [this](std::uint64_t next) { ack.send(encode_ack(next)); }) {
    data.set_receiver([this](Bytes wire) { receiver.on_wire(wire); });
    ack.set_receiver([this](Bytes wire) {
      if (const auto next = decode_ack(wire)) sender->on_ack(*next);
    });
    sender = std::make_unique<GbnSender>(
        sim, config,
        [this](const SequencedFrame& frame) { data.send(frame.encode()); });
  }

  sim::Simulation sim;
  net::Link data_link;
  net::Link ack_link;
  net::FaultyChannel data;
  net::FaultyChannel ack;
  GbnReceiver receiver;
  std::unique_ptr<GbnSender> sender;
  std::vector<Bytes> delivered;
};

TEST(GoBackN, LosslessDeliveryInOrder) {
  GbnHarness harness(0.0);
  for (int i = 0; i < 100; ++i)
    harness.sender->send(to_bytes("frame" + std::to_string(i)));
  harness.sim.run();
  ASSERT_EQ(harness.delivered.size(), 100u);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(to_string(harness.delivered[i]), "frame" + std::to_string(i));
  EXPECT_EQ(harness.sender->stats().retransmissions, 0u);
  EXPECT_TRUE(harness.sender->idle());
}

class GoBackNLossy : public ::testing::TestWithParam<double> {};

TEST_P(GoBackNLossy, RecoversAllFramesInOrder) {
  const double loss = GetParam();
  GbnHarness harness(loss, /*seed=*/42);
  for (int i = 0; i < 200; ++i)
    harness.sender->send(to_bytes("frame" + std::to_string(i)));
  harness.sim.run();
  ASSERT_EQ(harness.delivered.size(), 200u) << "loss=" << loss;
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(to_string(harness.delivered[i]), "frame" + std::to_string(i));
  if (loss > 0) EXPECT_GT(harness.sender->stats().retransmissions, 0u);
  EXPECT_TRUE(harness.sender->idle());
}

INSTANTIATE_TEST_SUITE_P(LossRates, GoBackNLossy,
                         ::testing::Values(0.01, 0.05, 0.15, 0.30));

TEST(GoBackN, WindowLimitsOutstandingFrames) {
  // With an unreachable receiver, exactly `window` frames go on the wire.
  sim::Simulation sim;
  int transmitted = 0;
  GbnSender sender(sim, {.window = 8, .retransmit_timeout = sim::kSecond},
                   [&](const SequencedFrame&) { ++transmitted; });
  for (int i = 0; i < 50; ++i) sender.send(to_bytes("x"));
  sim.run_until(sim::kMillisecond);
  EXPECT_EQ(transmitted, 8);
}

TEST(GoBackN, DuplicateFramesAreDiscarded) {
  std::vector<std::uint64_t> acks;
  std::vector<Bytes> delivered;
  GbnReceiver receiver([&](Bytes b) { delivered.push_back(std::move(b)); },
                       [&](std::uint64_t n) { acks.push_back(n); });
  SequencedFrame f0;
  f0.seq = 0;
  f0.payload = to_bytes("a");
  receiver.on_frame(f0);
  receiver.on_frame(f0);  // duplicate after timeout-based retransmit
  SequencedFrame f2;
  f2.seq = 2;  // gap: frame 1 lost
  f2.payload = to_bytes("c");
  receiver.on_frame(f2);
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(receiver.stats().frames_discarded, 2u);
  // Every arrival re-ACKs the cumulative position.
  EXPECT_EQ(acks, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(GoBackN, StaleAcksIgnored) {
  sim::Simulation sim;
  std::vector<SequencedFrame> wire;
  GbnSender sender(sim, {.window = 4, .retransmit_timeout = sim::kSecond},
                   [&](const SequencedFrame& f) { wire.push_back(f); });
  for (int i = 0; i < 4; ++i) sender.send(to_bytes("x"));
  sim.run_until(0);
  sender.on_ack(3);
  sender.on_ack(1);  // stale, must not rewind
  sender.on_ack(4);
  EXPECT_TRUE(sender.idle());
}

// End-to-end: a full block over a 10%-lossy channel, reconstructed by the
// hardware receiver with flags identical to the software validator's.
TEST(GoBackN, BmacBlockSurvivesLossyLink) {
  workload::NetworkOptions options;
  options.block_size = 6;
  options.seed = 7;
  options.missing_endorsement_rate = 0.2;
  workload::FabricNetworkHarness network(options);

  sim::Simulation sim;
  BmacPeer peer(sim, network.msp(), HwConfig{}, network.policies());
  peer.start();
  ProtocolSender protocol(network.msp());

  net::Link data_link(sim, {.gbps = 1.0,
                            .propagation = 50 * sim::kMicrosecond});
  net::Link ack_link(sim, {.gbps = 1.0,
                           .propagation = 50 * sim::kMicrosecond});
  net::FaultyChannel data(sim, data_link,
                          net::FaultConfig::uniform_loss(0.10, /*seed=*/99));
  net::FaultyChannel ack(sim, ack_link,
                         net::FaultConfig::uniform_loss(0.10, /*seed=*/100));

  std::unique_ptr<GbnSender> gbn_sender;
  GbnReceiver gbn_receiver(
      [&](Bytes payload) {
        auto packet = BmacPacket::decode(payload);
        ASSERT_TRUE(packet.has_value());
        peer.deliver_packet(std::move(*packet));
      },
      [&](std::uint64_t next) { ack.send(encode_ack(next)); });
  data.set_receiver([&](Bytes wire) { gbn_receiver.on_wire(wire); });
  ack.set_receiver([&](Bytes wire) {
    if (const auto next = decode_ack(wire)) gbn_sender->on_ack(*next);
  });
  gbn_sender = std::make_unique<GbnSender>(
      sim, GbnSender::Config{},
      [&](const SequencedFrame& frame) { data.send(frame.encode()); });

  std::vector<fabric::Block> blocks;
  for (int b = 0; b < 3; ++b) {
    blocks.push_back(network.next_block());
    for (const auto& packet : protocol.send(blocks.back()).packets)
      gbn_sender->send(packet.encode());
    peer.deliver_block(blocks.back());
  }
  sim.run();

  EXPECT_GT(gbn_sender->stats().retransmissions, 0u);
  EXPECT_TRUE(gbn_sender->idle());
  ASSERT_EQ(peer.results().size(), 3u);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& reference =
        network.reference_result(blocks[b].header.number);
    EXPECT_EQ(peer.results()[b].block_valid, reference.block_valid);
    for (std::size_t t = 0; t < reference.flags.size(); ++t)
      EXPECT_EQ(peer.results()[b].flags[t], reference.flags[t]);
  }
}

}  // namespace
}  // namespace bm::bmac

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace bm {
namespace {

TEST(Bytes, ToBytesRoundTrip) {
  const std::string s = "hello fabric";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, EqualComparesContent) {
  const Bytes a = to_bytes("abc");
  const Bytes b = to_bytes("abc");
  const Bytes c = to_bytes("abd");
  EXPECT_TRUE(equal(a, b));
  EXPECT_FALSE(equal(a, c));
  EXPECT_FALSE(equal(a, to_bytes("ab")));
  EXPECT_TRUE(equal(Bytes{}, Bytes{}));
}

TEST(Bytes, ConcatAndAppend) {
  Bytes out = concat({to_bytes("ab"), to_bytes(""), to_bytes("cd")});
  EXPECT_EQ(to_string(out), "abcd");
  append(out, to_bytes("ef"));
  EXPECT_EQ(to_string(out), "abcdef");
}

TEST(Bytes, Slice) {
  const Bytes b = to_bytes("0123456789");
  EXPECT_EQ(to_string(slice(b, 2, 3)), "234");
  EXPECT_EQ(slice(b, 0, 0).size(), 0u);
}

TEST(Bytes, BigEndianPacking) {
  Bytes b;
  put_u16be(b, 0x1234);
  put_u32be(b, 0xDEADBEEF);
  put_u64be(b, 0x0102030405060708ull);
  EXPECT_EQ(get_u16be(b, 0), 0x1234);
  EXPECT_EQ(get_u32be(b, 2), 0xDEADBEEFu);
  EXPECT_EQ(get_u64be(b, 6), 0x0102030405060708ull);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Bytes data = rng.bytes(rng.uniform(100));
    const auto decoded = hex_decode(hex_encode(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(equal(*decoded, data));
  }
}

TEST(Hex, KnownValues) {
  EXPECT_EQ(hex_encode(Bytes{0x00, 0xff, 0x10}), "00ff10");
  EXPECT_EQ(hex_encode(Bytes{}), "");
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // bad digit
  EXPECT_TRUE(hex_decode("AbCd").has_value());   // mixed case ok
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 2000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 2000.0, 0.25, 0.05);
}

TEST(Rng, BytesLength) {
  Rng rng(3);
  EXPECT_EQ(rng.bytes(0).size(), 0u);
  EXPECT_EQ(rng.bytes(7).size(), 7u);
  EXPECT_EQ(rng.bytes(64).size(), 64u);
}

TEST(Log, SinkCapturesFilteredLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  log_info("dropped ", 1);            // below threshold, never reaches sink
  log_warn("kept ", 2, " items");
  set_log_level(saved);
  set_log_sink({});                   // restore stderr
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::Warn);
  EXPECT_EQ(captured[0].second, "kept 2 items");
}

TEST(Log, ClockPrefixesSimulatedTime) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& line) {
    captured.push_back(line);
  });
  set_log_clock([] { return std::int64_t{1500}; });  // 1.500 us
  log_error("boom");
  set_log_clock({});
  log_error("plain");
  set_log_sink({});
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "[t=1.500us] boom");
  EXPECT_EQ(captured[1], "plain");
}

}  // namespace
}  // namespace bm

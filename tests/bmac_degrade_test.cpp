// Graceful degradation end to end: the GBN sender's backoff/cap machinery,
// the BMac peer's watchdog + software fallback, and the chaos soak — under
// every shipped fault config the peer must commit the exact block hashes of
// the fault-free software baseline (the §4.1 equivalence invariant extended
// to degraded networks; see docs/FAULTS.md).
#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "bmac/reliable.hpp"
#include "workload/chaos.hpp"

namespace bm::bmac {
namespace {

using workload::ChaosOptions;
using workload::ChaosReport;
using workload::FabricNetworkHarness;
using workload::NetworkOptions;

// --- GBN: exponential-backoff RTO -------------------------------------------

TEST(GbnBackoff, RtoDoublesUpToCapWhileStalled) {
  sim::Simulation sim;
  GbnSender::Config config;
  config.retransmit_timeout = 1 * sim::kMillisecond;
  config.rto_backoff = 2.0;
  config.rto_max = 8 * sim::kMillisecond;
  std::vector<sim::Time> transmissions;
  GbnSender sender(sim, config,
                   [&](const SequencedFrame&) { transmissions.push_back(sim.now()); });
  sender.send(Bytes{1, 2, 3});  // every transmission is blackholed
  sim.run_until(40 * sim::kMillisecond);

  // t=0, then timeouts after 1, 2, 4, 8, 8, 8... ms of waiting.
  ASSERT_GE(transmissions.size(), 7u);
  EXPECT_EQ(transmissions[0], 0);
  EXPECT_EQ(transmissions[1] - transmissions[0], 1 * sim::kMillisecond);
  EXPECT_EQ(transmissions[2] - transmissions[1], 2 * sim::kMillisecond);
  EXPECT_EQ(transmissions[3] - transmissions[2], 4 * sim::kMillisecond);
  EXPECT_EQ(transmissions[4] - transmissions[3], 8 * sim::kMillisecond);
  EXPECT_EQ(transmissions[5] - transmissions[4], 8 * sim::kMillisecond);
  EXPECT_EQ(sender.current_rto(), 8 * sim::kMillisecond);  // pinned at rto_max
}

TEST(GbnBackoff, WindowProgressResetsRto) {
  sim::Simulation sim;
  GbnSender::Config config;
  config.retransmit_timeout = 1 * sim::kMillisecond;
  config.rto_backoff = 2.0;
  config.rto_max = 64 * sim::kMillisecond;
  GbnSender sender(sim, config, [](const SequencedFrame&) {});
  sender.send(Bytes{1});
  sim.run_until(8 * sim::kMillisecond);  // timeouts at 1, 3, 7 ms
  EXPECT_GT(sender.current_rto(), config.retransmit_timeout);
  sender.on_ack(1);  // the frame finally got through
  EXPECT_EQ(sender.current_rto(), config.retransmit_timeout);
  EXPECT_TRUE(sender.idle());
}

// --- GBN: retransmission cap + stream resync --------------------------------

TEST(GbnCap, ExhaustionFiresFailureAndResyncsStream) {
  sim::Simulation sim;
  GbnSender::Config config;
  config.retransmit_timeout = 1 * sim::kMillisecond;
  config.rto_backoff = 1.0;  // fixed RTO: timeouts at 1, 2, 3, 4 ms
  config.retransmit_cap = 3;

  bool blackhole = true;
  std::vector<Bytes> delivered;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> failures;
  std::unique_ptr<GbnSender> sender;
  GbnReceiver receiver([&](Bytes payload) { delivered.push_back(std::move(payload)); },
                       [&](std::uint64_t next) { sender->on_ack(next); });
  sender = std::make_unique<GbnSender>(
      sim, config, [&](const SequencedFrame& frame) {
        if (!blackhole) receiver.on_frame(frame);
      });
  sender->set_failure_callback([&](std::uint64_t first, std::uint64_t last) {
    failures.emplace_back(first, last);
    blackhole = false;  // the path heals right as the sender gives up
  });

  sender->send(Bytes{10});
  sender->send(Bytes{20});
  sim.run_until(10 * sim::kMillisecond);

  // Frames 0-1 were abandoned after 3 fruitless timeouts; the SYNC frame
  // (seq 2) fast-forwarded the receiver past the gap.
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].first, 0u);
  EXPECT_EQ(failures[0].second, 1u);
  EXPECT_EQ(sender->stats().frames_abandoned, 2u);
  EXPECT_EQ(sender->stats().stream_resyncs, 1u);
  EXPECT_EQ(receiver.stats().stream_resyncs, 1u);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(receiver.next_expected(), 3u);
  EXPECT_TRUE(sender->idle());  // SYNC was ACKed

  // The stream keeps working for later traffic.
  sender->send(Bytes{30});
  sim.run_until(sim.now() + 5 * sim::kMillisecond);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], Bytes{30});
}

TEST(GbnCap, ZeroCapRetriesForever) {
  sim::Simulation sim;
  GbnSender::Config config;
  config.retransmit_timeout = 1 * sim::kMillisecond;
  config.rto_backoff = 1.0;
  config.retransmit_cap = 0;
  int transmissions = 0;
  GbnSender sender(sim, config,
                   [&](const SequencedFrame&) { ++transmissions; });
  bool failed = false;
  sender.set_failure_callback(
      [&](std::uint64_t, std::uint64_t) { failed = true; });
  sender.send(Bytes{1});
  sim.run_until(50 * sim::kMillisecond);
  EXPECT_FALSE(failed);
  EXPECT_GT(transmissions, 40);
  EXPECT_EQ(sender.stats().stream_resyncs, 0u);
}

// --- GBN: wire framing CRC ---------------------------------------------------

TEST(GbnWire, CorruptedFramesAndAcksAreRejected) {
  SequencedFrame frame;
  frame.seq = 7;
  frame.payload = Bytes{1, 2, 3, 4};
  Bytes wire = frame.encode();
  ASSERT_EQ(wire.size(), frame.wire_size());
  const auto ok = SequencedFrame::decode(wire);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->seq, 7u);
  EXPECT_EQ(ok->payload, frame.payload);

  int delivered = 0, acked = 0;
  GbnReceiver receiver([&](Bytes) { ++delivered; },
                       [&](std::uint64_t) { ++acked; });
  // Flip one byte anywhere: the frame must be dropped without an ACK (a
  // corrupted sequence number could otherwise poison the cumulative ACK).
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes bad = wire;
    bad[i] ^= 0x40;
    receiver.on_wire(bad);
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(acked, 0);
  EXPECT_EQ(receiver.stats().frames_corrupted, wire.size());
  receiver.on_wire(Bytes{1, 2});  // truncated
  EXPECT_EQ(receiver.stats().frames_corrupted, wire.size() + 1);

  const Bytes ack = encode_ack(42);
  ASSERT_EQ(ack.size(), kGbnAckWireSize);
  EXPECT_EQ(decode_ack(ack), 42u);
  for (std::size_t i = 0; i < ack.size(); ++i) {
    Bytes bad = ack;
    bad[i] ^= 0x01;
    EXPECT_FALSE(decode_ack(bad).has_value()) << i;
  }
}

// --- peer watchdog + software fallback ---------------------------------------

struct DegradeRun {
  explicit DegradeRun(BmacPeer::DegradeConfig degrade) {
    NetworkOptions options;
    options.block_size = 5;
    options.seed = 77;
    harness = std::make_unique<FabricNetworkHarness>(options);
    peer = std::make_unique<BmacPeer>(sim, harness->msp(), HwConfig{},
                                      harness->policies());
    peer->enable_graceful_degradation(degrade);
    peer->start();
    sender = std::make_unique<ProtocolSender>(harness->msp());
  }

  std::unique_ptr<FabricNetworkHarness> harness;
  sim::Simulation sim;
  std::unique_ptr<BmacPeer> peer;
  std::unique_ptr<ProtocolSender> sender;
};

TEST(Degrade, StalledStreamFallsBackAndHashesMatchReference) {
  BmacPeer::DegradeConfig degrade;
  degrade.result_budget = 50 * sim::kMillisecond;
  DegradeRun run(degrade);

  // Blocks 0 and 2 arrive intact; every packet of block 1 is lost. The
  // watchdog must recover block 1 in software and block 2 — held by the
  // ordered release gate — must then flow through the hardware normally.
  for (int i = 0; i < 3; ++i) {
    fabric::Block block = run.harness->next_block();
    if (i != 1)
      for (auto& packet : run.sender->send(block).packets)
        run.peer->deliver_packet(std::move(packet));
    run.peer->deliver_block(std::move(block));
  }
  run.sim.run();

  const auto& results = run.peer->results();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].fallback);
  EXPECT_TRUE(results[1].fallback);
  EXPECT_FALSE(results[2].fallback);
  EXPECT_EQ(run.peer->degrade_metrics().fallback_blocks, 1u);
  EXPECT_GE(run.peer->degrade_metrics().watchdog_fires, 1u);

  // Commit order, flags and the hash chain are byte-identical to the
  // fault-free software reference.
  const fabric::Ledger& reference = run.harness->reference_ledger();
  ASSERT_EQ(run.peer->ledger().height(), 3u);
  ASSERT_EQ(reference.height(), 3u);
  for (std::uint64_t h = 0; h < 3; ++h) {
    EXPECT_EQ(run.peer->ledger().at(h).commit_hash,
              reference.at(h).commit_hash)
        << h;
    EXPECT_EQ(results[h].flags, run.harness->reference_result(h).flags) << h;
  }
}

TEST(Degrade, HealthyStreamsNeverFallBackEvenWithTinyBudget) {
  BmacPeer::DegradeConfig degrade;
  degrade.result_budget = 10 * sim::kMicrosecond;  // far below hw latency
  DegradeRun run(degrade);
  for (int i = 0; i < 3; ++i) {
    fabric::Block block = run.harness->next_block();
    for (auto& packet : run.sender->send(block).packets)
      run.peer->deliver_packet(std::move(packet));
    run.peer->deliver_block(std::move(block));
  }
  run.sim.run();
  ASSERT_EQ(run.peer->results().size(), 3u);
  // The watchdog fired early, saw complete streams, and deferred — the
  // fallback must only trigger on genuinely stalled streams.
  EXPECT_EQ(run.peer->degrade_metrics().fallback_blocks, 0u);
  EXPECT_GT(run.peer->degrade_metrics().watchdog_deferrals, 0u);
  for (std::uint64_t h = 0; h < 3; ++h)
    EXPECT_EQ(run.peer->ledger().at(h).commit_hash,
              run.harness->reference_ledger().at(h).commit_hash);
}

TEST(Degrade, DegradedModeMatchesHealthyModeOnCleanInput) {
  // With no faults, the degraded peer (assembly gating, sequencer) commits
  // exactly what the classic peer commits.
  NetworkOptions options;
  options.block_size = 6;
  options.seed = 123;
  options.bad_signature_rate = 0.1;
  options.missing_endorsement_rate = 0.1;

  auto run_peer = [&](bool degraded) {
    FabricNetworkHarness harness(options);
    sim::Simulation sim;
    BmacPeer peer(sim, harness.msp(), HwConfig{}, harness.policies());
    if (degraded) peer.enable_graceful_degradation();
    peer.start();
    ProtocolSender sender(harness.msp());
    for (int i = 0; i < 4; ++i) {
      fabric::Block block = harness.next_block();
      for (auto& packet : sender.send(block).packets)
        peer.deliver_packet(std::move(packet));
      peer.deliver_block(std::move(block));
      sim.run();
    }
    std::vector<crypto::Digest> hashes;
    for (std::uint64_t h = 0; h < peer.ledger().height(); ++h)
      hashes.push_back(peer.ledger().at(h).commit_hash);
    return hashes;
  };
  const auto healthy = run_peer(false);
  const auto degraded = run_peer(true);
  ASSERT_EQ(healthy.size(), 4u);
  EXPECT_EQ(healthy, degraded);
}

// --- the chaos soak -----------------------------------------------------------

ChaosOptions soak_options(const std::string& config_name) {
  ChaosOptions options;
  options.network.block_size = 6;
  options.network.seed = 500;
  options.blocks = 10;
  std::string error;
  const auto scenario = net::load_fault_scenario(
      std::string(BM_REPO_ROOT) + "/configs/" + config_name, &error);
  EXPECT_TRUE(scenario.has_value()) << error;
  options.scenario = *scenario;
  return options;
}

TEST(ChaosSoak, EveryShippedScenarioCommitsReferenceHashes) {
  const char* configs[] = {"faults_burst.json", "faults_corrupt.json",
                           "faults_reorder.json", "faults_partition.json"};
  std::uint64_t total_fallbacks = 0;
  for (const char* name : configs) {
    obs::Registry registry;
    const ChaosReport report =
        workload::run_chaos_scenario(soak_options(name), &registry);
    EXPECT_TRUE(report.complete) << name << "\n" << report.to_text();
    EXPECT_TRUE(report.hashes_match) << name << "\n" << report.to_text();
    EXPECT_TRUE(report.flags_match) << name << "\n" << report.to_text();
    total_fallbacks += report.degrade.fallback_blocks;
    // The scenario actually impaired traffic, and the impairments are
    // visible in the metrics snapshot.
    EXPECT_GT(report.data_faults.frames, 0u) << name;
    const auto* assessed = registry.find_counter("chaos_data_frames_total");
    ASSERT_NE(assessed, nullptr) << name;
    EXPECT_GT(assessed->value(), 0u) << name;
  }
  // At least one scenario (the partition) must have exercised the fallback.
  EXPECT_GT(total_fallbacks, 0u);
}

TEST(ChaosSoak, PartitionScenarioExercisesFallbackVisibly) {
  obs::Registry registry;
  const ChaosReport report =
      workload::run_chaos_scenario(soak_options("faults_partition.json"),
                                   &registry);
  ASSERT_TRUE(report.ok()) << report.to_text();
  EXPECT_GT(report.degrade.fallback_blocks, 0u) << report.to_text();
  EXPECT_GT(report.sender_stats.frames_abandoned, 0u);
  EXPECT_GT(report.sender_stats.stream_resyncs, 0u);
  EXPECT_GT(report.data_faults.dropped_partition, 0u);
  // Fallback events are visible in the metrics snapshot.
  const auto* fallbacks = registry.find_counter("bmac_fallback_blocks_total");
  ASSERT_NE(fallbacks, nullptr);
  EXPECT_EQ(fallbacks->value(), report.degrade.fallback_blocks);
}

TEST(ChaosSoak, TamperedBlockStillRejectedUnderFaults) {
  ChaosOptions options = soak_options("faults_burst.json");
  options.tamper_last_block = true;
  const ChaosReport report = workload::run_chaos_scenario(options);
  ASSERT_TRUE(report.ok()) << report.to_text();
  EXPECT_EQ(report.blocks_rejected, 1u);
  EXPECT_EQ(report.blocks_committed,
            static_cast<std::uint64_t>(options.blocks - 1));
}

TEST(ChaosSoak, ByteIdenticalAcrossRuns) {
  // Same seed + config => byte-identical report and metrics artifacts.
  auto run_once = [] {
    obs::Registry registry;
    const ChaosReport report =
        workload::run_chaos_scenario(soak_options("faults_partition.json"),
                                     &registry);
    return std::make_pair(report.to_text(), registry.render_json(0));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace bm::bmac

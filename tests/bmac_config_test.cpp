#include <gtest/gtest.h>

#include "bmac/config.hpp"

namespace bm::bmac {
namespace {

constexpr const char* kSample = R"(
# Blockchain Machine deployment configuration
network:
  orgs: [Org1, Org2, Org3]
chaincodes:
  - name: smallbank
    policy: "2-outof-2 orgs"
  - name: drm
    policy: "Org1 & Org2"
hardware:
  tx_validators: 8
  engines_per_vscc: 2
  max_block_txs: 256
  db_capacity: 8192
)";

TEST(BmacConfig, ParsesFullDocument) {
  const auto result = parse_config(kSample);
  ASSERT_TRUE(std::holds_alternative<BmacConfig>(result));
  const auto& config = std::get<BmacConfig>(result);
  EXPECT_EQ(config.orgs, (std::vector<std::string>{"Org1", "Org2", "Org3"}));
  EXPECT_EQ(config.chaincode_policies.at("smallbank"), "2-outof-2 orgs");
  EXPECT_EQ(config.chaincode_policies.at("drm"), "Org1 & Org2");
  EXPECT_EQ(config.hw.tx_validators, 8);
  EXPECT_EQ(config.hw.engines_per_vscc, 2);
  EXPECT_EQ(config.hw.max_block_txs, 256u);
  EXPECT_EQ(config.hw.db_capacity, 8192u);
}

TEST(BmacConfig, PopulatesMspInOrder) {
  const auto config = std::get<BmacConfig>(parse_config(kSample));
  fabric::Msp msp;
  config.populate_msp(msp);
  EXPECT_EQ(msp.org_count(), 3u);
  EXPECT_EQ(msp.find_org("Org2")->org_index(), 2);
}

TEST(BmacConfig, ParsesPolicies) {
  const auto config = std::get<BmacConfig>(parse_config(kSample));
  const auto policies = config.parse_policies();
  EXPECT_EQ(policies.at("smallbank").min_endorsements_to_satisfy(), 2);
  EXPECT_EQ(policies.at("drm").principals().size(), 2u);
}

TEST(BmacConfig, DefaultsWhenHardwareOmitted) {
  const auto result = parse_config(
      "network:\n  orgs: [Org1]\nchaincodes:\n  - name: cc\n    policy: Org1\n");
  ASSERT_TRUE(std::holds_alternative<BmacConfig>(result));
  EXPECT_EQ(std::get<BmacConfig>(result).hw.tx_validators, 8);
}

TEST(BmacConfig, Errors) {
  auto expect_error = [](const std::string& text) {
    const auto result = parse_config(text);
    EXPECT_TRUE(std::holds_alternative<BmacConfigError>(result)) << text;
  };
  expect_error("");                                  // no orgs
  expect_error("bogus:\n  x: 1\n");                  // unknown section
  expect_error("network:\n  orgs: [Org1]\nchaincodes:\n  - name: cc\n");
  expect_error("network:\n  orgs: [Org1]\nhardware:\n  tx_validators: lots\n");
  expect_error("network:\n  cheese: [Org1]\n");
  expect_error("  indented: before section\n");
}

TEST(BmacConfig, LoadFileThrowsOnMissing) {
  EXPECT_THROW(load_config_file("/nonexistent/path.yaml"), std::runtime_error);
}

}  // namespace
}  // namespace bm::bmac

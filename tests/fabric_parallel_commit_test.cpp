// Dependency-aware parallel commit: the rw-set wave scheduler must respect
// true and anti dependencies, and the parallel MVCC + commit path must be
// byte-identical to the sequential oracle on every workload shape —
// conflict-free, conflict-heavy, and Zipf-skewed hot keys. Runs under the
// `threads` label so the CI TSan job races the wave workers.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "fabric/commit_graph.hpp"
#include "fabric/orderer.hpp"
#include "fabric/statedb.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"

namespace bm::fabric {
namespace {

// ---------------------------------------------------------------------------
// build_commit_schedule unit cases on hand-built transactions.

ParsedTransaction tx_rw(std::vector<std::string> reads,
                        std::vector<std::string> writes) {
  ParsedTransaction tx;
  tx.chaincode_id = "cc";
  for (auto& k : reads) tx.rwset.reads.push_back({std::move(k), std::nullopt});
  for (auto& k : writes) tx.rwset.writes.push_back({std::move(k), to_bytes("v")});
  return tx;
}

std::vector<TxValidationCode> all_valid(std::size_t n) {
  return std::vector<TxValidationCode>(n, TxValidationCode::kValid);
}

TEST(CommitSchedule, ConflictFreeIsOneWave) {
  std::vector<ParsedTransaction> txs;
  for (int i = 0; i < 8; ++i)
    txs.push_back(tx_rw({}, {"k" + std::to_string(i)}));
  const CommitSchedule s = build_commit_schedule(txs, all_valid(txs.size()));
  ASSERT_EQ(s.wave_count(), 1u);
  EXPECT_EQ(s.waves[0].size(), 8u);
  EXPECT_EQ(s.dependencies, 0u);
  EXPECT_EQ(s.scheduled_txs, 8u);
}

TEST(CommitSchedule, ReadAfterWriteChainsSerialize) {
  // t0 writes a, t1 reads a writes b, t2 reads b: three waves.
  std::vector<ParsedTransaction> txs;
  txs.push_back(tx_rw({}, {"a"}));
  txs.push_back(tx_rw({"a"}, {"b"}));
  txs.push_back(tx_rw({"b"}, {}));
  const CommitSchedule s = build_commit_schedule(txs, all_valid(3));
  ASSERT_EQ(s.wave_count(), 3u);
  EXPECT_EQ(s.waves[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(s.waves[1], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(s.waves[2], (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(s.dependencies, 2u);
}

TEST(CommitSchedule, AntiDependencyAllowsSameWave) {
  // t0 reads k, t1 writes k: the write folds in after the wave, so both
  // may share wave 0 — but the writer must not land EARLIER.
  std::vector<ParsedTransaction> txs;
  txs.push_back(tx_rw({"k"}, {}));
  txs.push_back(tx_rw({}, {"k"}));
  const CommitSchedule s = build_commit_schedule(txs, all_valid(2));
  ASSERT_EQ(s.wave_count(), 1u);
  EXPECT_EQ(s.waves[0], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(s.dependencies, 1u);
}

TEST(CommitSchedule, ReaderClearsEveryPriorWriterNotJustTheLast) {
  // t0 writes a; t1 reads a, writes b — its own read holds it back to
  // wave 1; t2 writes b with no constraints at all (WW order is restored
  // by the ordered write batch), so it lands in wave 0, EARLIER than the
  // preceding writer t1. t3 reads b: it must clear BOTH writers of b.
  // Tracking only the last writer (t2, wave 0) would put t3 in wave 1,
  // where it would decide before t1's write of b folds in.
  std::vector<ParsedTransaction> txs;
  txs.push_back(tx_rw({}, {"a"}));
  txs.push_back(tx_rw({"a"}, {"b"}));
  txs.push_back(tx_rw({}, {"b"}));
  txs.push_back(tx_rw({"b"}, {}));
  const CommitSchedule s = build_commit_schedule(txs, all_valid(4));
  ASSERT_GE(s.wave_count(), 3u);
  std::vector<std::uint32_t> wave_of(4, 0);
  for (std::uint32_t wv = 0; wv < s.waves.size(); ++wv)
    for (const std::uint32_t t : s.waves[wv]) wave_of[t] = wv;
  EXPECT_EQ(wave_of[2], 0u) << "unconstrained WW writer need not wait";
  EXPECT_GT(wave_of[3], wave_of[1]);
  EXPECT_GT(wave_of[3], wave_of[2]);
}

TEST(CommitSchedule, InvalidTransactionsAreExcluded) {
  std::vector<ParsedTransaction> txs;
  txs.push_back(tx_rw({}, {"a"}));
  txs.push_back(tx_rw({"a"}, {}));  // would depend on t0, but t0 is invalid
  std::vector<TxValidationCode> flags = all_valid(2);
  flags[0] = TxValidationCode::kBadCreatorSignature;
  const CommitSchedule s = build_commit_schedule(txs, flags);
  ASSERT_EQ(s.wave_count(), 1u);
  EXPECT_EQ(s.waves[0], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(s.dependencies, 0u);
  EXPECT_EQ(s.scheduled_txs, 1u);
}

// ---------------------------------------------------------------------------
// Differential: parallel commit vs the sequential oracle, end to end.

class ParallelCommitTest : public ::testing::Test {
 protected:
  ParallelCommitTest() {
    auto& org1 = msp_.add_org("Org1");
    auto& org2 = msp_.add_org("Org2");
    client_ = org1.issue(Role::kClient, 0, "client0.org1");
    peer1_ = org1.issue(Role::kPeer, 0, "peer0.org1");
    peer2_ = org2.issue(Role::kPeer, 0, "peer0.org2");
    orderer_ = std::make_unique<Orderer>(
        org1.issue(Role::kOrderer, 0, "orderer0.org1"),
        Orderer::Config{.max_tx_per_block = 200});
    policies_.emplace("smallbank",
                      parse_policy_or_throw("Org1 & Org2", msp_.org_names()));
  }

  Bytes make_tx(const std::string& id, ReadWriteSet rwset) {
    TxProposal proposal;
    proposal.channel_id = "ch";
    proposal.chaincode_id = "smallbank";
    proposal.tx_id = id;
    proposal.rwset = std::move(rwset);
    return build_envelope(proposal, client_, {&peer1_, &peer2_});
  }

  Block cut(std::vector<Bytes> envelopes) {
    for (auto& env : envelopes) orderer_->submit(std::move(env));
    return *orderer_->flush();
  }

  /// Run `blocks` through a sequential oracle lane and parallel lanes at
  /// 2 and 4 worker threads; everything observable must match.
  void expect_equivalent(const std::vector<Block>& blocks) {
    struct Lane {
      std::unique_ptr<ValidatorBackend> backend;
      StateDb db;
      Ledger ledger;
      Lane(std::unique_ptr<ValidatorBackend> b, std::size_t shards)
          : backend(std::move(b)), db(shards) {}
    };
    std::deque<Lane> lanes;
    lanes.emplace_back(
        make_software_backend(msp_, policies_, {.parallelism = 1}), 1);
    lanes.emplace_back(make_software_backend(msp_, policies_,
                                             {.parallelism = 2,
                                              .parallel_commit = true}),
                       4);
    lanes.emplace_back(make_software_backend(msp_, policies_,
                                             {.parallelism = 4,
                                              .verify_cache_capacity = 256,
                                              .comb_table_capacity = 8,
                                              .parallel_commit = true}),
                       8);

    for (const Block& block : blocks) {
      const auto reference = lanes[0].backend->validate_and_commit(
          block, lanes[0].db, lanes[0].ledger);
      for (std::size_t i = 1; i < lanes.size(); ++i) {
        const auto result = lanes[i].backend->validate_and_commit(
            block, lanes[i].db, lanes[i].ledger);
        ASSERT_EQ(result.flags, reference.flags) << "lane " << i;
        ASSERT_EQ(result.commit_hash, reference.commit_hash) << "lane " << i;
        EXPECT_EQ(result.valid_tx_count, reference.valid_tx_count);
        EXPECT_EQ(lanes[i].db.size(), lanes[0].db.size());
      }
    }
    // Same stats where semantics demand it: reads/writes are part of the
    // oracle (the parallel path must probe the DB exactly as often), while
    // wave counters exist only on the parallel lanes.
    const auto& seq = lanes[0].backend->stats();
    for (std::size_t i = 1; i < lanes.size(); ++i) {
      const auto& par = lanes[i].backend->stats();
      EXPECT_EQ(par.db_reads, seq.db_reads) << "lane " << i;
      EXPECT_EQ(par.db_writes, seq.db_writes) << "lane " << i;
      EXPECT_GT(par.commit_waves, 0u);
    }
    EXPECT_EQ(seq.commit_waves, 0u);
  }

  Msp msp_;
  Identity client_, peer1_, peer2_;
  std::unique_ptr<Orderer> orderer_;
  std::map<std::string, EndorsementPolicy> policies_;
};

TEST_F(ParallelCommitTest, ConflictFreeBlocks) {
  std::vector<Block> blocks;
  for (int b = 0; b < 3; ++b) {
    std::vector<Bytes> envs;
    for (int i = 0; i < 24; ++i) {
      ReadWriteSet rw;
      rw.writes.push_back(
          {"b" + std::to_string(b) + "_k" + std::to_string(i), to_bytes("v")});
      envs.push_back(make_tx("t" + std::to_string(b * 100 + i), std::move(rw)));
    }
    blocks.push_back(cut(std::move(envs)));
  }
  expect_equivalent(blocks);
}

TEST_F(ParallelCommitTest, ConflictHeavyBlocks) {
  // Everyone reads and writes the same handful of keys: long dependency
  // chains, and every intra-block read-after-write is an MVCC conflict the
  // parallel path must flag in exactly the same positions.
  std::vector<Block> blocks;
  for (int b = 0; b < 3; ++b) {
    std::vector<Bytes> envs;
    for (int i = 0; i < 24; ++i) {
      ReadWriteSet rw;
      const std::string hot = "hot" + std::to_string(i % 3);
      rw.reads.push_back({hot, std::nullopt});
      rw.writes.push_back({hot, to_bytes("v" + std::to_string(i))});
      envs.push_back(make_tx("c" + std::to_string(b * 100 + i), std::move(rw)));
    }
    blocks.push_back(cut(std::move(envs)));
  }
  expect_equivalent(blocks);
}

TEST_F(ParallelCommitTest, ZipfSkewedWorkload) {
  // Zipf-ish key choice: key j is picked with weight 1/(j+1). Mixed reads
  // and writes with realistic version references against committed state.
  Rng rng(42);
  const int keys = 32;
  std::vector<double> cdf(keys);
  double total = 0;
  for (int j = 0; j < keys; ++j) {
    total += 1.0 / (j + 1);
    cdf[j] = total;
  }
  auto pick = [&] {
    const double r =
        static_cast<double>(rng.next_u64() % 1000000) / 1000000.0 * total;
    for (int j = 0; j < keys; ++j)
      if (r <= cdf[j]) return j;
    return keys - 1;
  };

  std::vector<Block> blocks;
  for (int b = 0; b < 4; ++b) {
    std::vector<Bytes> envs;
    for (int i = 0; i < 30; ++i) {
      ReadWriteSet rw;
      rw.reads.push_back({"z" + std::to_string(pick()), std::nullopt});
      rw.writes.push_back({"z" + std::to_string(pick()),
                           to_bytes("v" + std::to_string(i))});
      if (i % 3 == 0)
        rw.writes.push_back({"z" + std::to_string(pick()), to_bytes("w")});
      envs.push_back(make_tx("z" + std::to_string(b * 100 + i), std::move(rw)));
    }
    blocks.push_back(cut(std::move(envs)));
  }
  expect_equivalent(blocks);
}

TEST_F(ParallelCommitTest, MixedValidityBlocks) {
  // Invalid envelopes interleaved with dependent valid ones: the scheduler
  // must skip them and the flags must still line up position by position.
  std::vector<Bytes> envs;
  for (int i = 0; i < 10; ++i) {
    ReadWriteSet rw;
    rw.reads.push_back({"m" + std::to_string(i % 2), std::nullopt});
    rw.writes.push_back({"m" + std::to_string((i + 1) % 2), to_bytes("x")});
    envs.push_back(make_tx("v" + std::to_string(i), std::move(rw)));
    if (i % 3 == 0) envs.push_back(to_bytes("garbage " + std::to_string(i)));
  }
  Bytes bad = make_tx("sig", {});
  bad.back() ^= 1;
  envs.push_back(std::move(bad));
  expect_equivalent({cut(std::move(envs))});
}

}  // namespace
}  // namespace bm::fabric

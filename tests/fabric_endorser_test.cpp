#include <gtest/gtest.h>

#include "fabric/endorser.hpp"
#include "fabric/orderer.hpp"

namespace bm::fabric {
namespace {

/// A tiny "accounts" chaincode: args = "set <key> <value>" writes,
/// args = "move <from> <to>" reads both and swaps their values.
ReadWriteSet accounts_chaincode(ByteView args, const StateDb& state) {
  const std::string text = to_string(args);
  ReadWriteSet rwset;
  if (text.rfind("set ", 0) == 0) {
    const auto space = text.find(' ', 4);
    rwset.writes.push_back(
        {text.substr(4, space - 4), to_bytes(text.substr(space + 1))});
    return rwset;
  }
  // "move a b"
  const auto space = text.find(' ', 5);
  const std::string a = text.substr(5, space - 5);
  const std::string b = text.substr(space + 1);
  for (const std::string& key : {a, b}) {
    KVRead read{key, std::nullopt};
    if (const auto value = state.get(StateDb::namespaced("accounts", key)))
      read.version = value->version;
    rwset.reads.push_back(std::move(read));
  }
  const auto value_a = state.get(StateDb::namespaced("accounts", a));
  const auto value_b = state.get(StateDb::namespaced("accounts", b));
  rwset.writes.push_back({a, value_b ? value_b->value : Bytes{}});
  rwset.writes.push_back({b, value_a ? value_a->value : Bytes{}});
  return rwset;
}

struct EndorserFixture : ::testing::Test {
  EndorserFixture() {
    org1 = &msp.add_org("Org1");
    org2 = &msp.add_org("Org2");
    client = org1->issue(Role::kClient, 0, "c0.org1");
    policies.emplace("accounts",
                     parse_policy_or_throw("Org1 & Org2", msp.org_names()));
    peer1 = std::make_unique<EndorserPeer>(
        org1->issue(Role::kPeer, 0, "p0.org1"), msp, policies);
    peer2 = std::make_unique<EndorserPeer>(
        org2->issue(Role::kPeer, 0, "p0.org2"), msp, policies);
    peer1->install_chaincode("accounts", accounts_chaincode);
    peer2->install_chaincode("accounts", accounts_chaincode);
    orderer = std::make_unique<Orderer>(
        org1->issue(Role::kOrderer, 0, "o0.org1"),
        Orderer::Config{.max_tx_per_block = 1});
  }

  /// Full execute-order-validate round for one invocation.
  BlockValidationResult run_tx(const std::string& args_text) {
    const Proposal proposal =
        make_proposal(client, "ch", "accounts",
                      "tx" + std::to_string(next_tx_++), to_bytes(args_text));
    const std::vector<ProposalResponse> responses = {
        peer1->endorse(proposal), peer2->endorse(proposal)};
    std::string error;
    const auto envelope =
        assemble_envelope(proposal, client, msp, responses, &error);
    EXPECT_TRUE(envelope.has_value()) << error;
    auto block = orderer->submit(*envelope);
    EXPECT_TRUE(block.has_value());
    const auto r1 = peer1->deliver_block(*block);
    const auto r2 = peer2->deliver_block(*block);
    EXPECT_EQ(r1.flags, r2.flags);
    EXPECT_EQ(r1.commit_hash, r2.commit_hash);
    return r1;
  }

  Msp msp;
  CertificateAuthority* org1;
  CertificateAuthority* org2;
  Identity client;
  std::map<std::string, EndorsementPolicy> policies;
  std::unique_ptr<EndorserPeer> peer1, peer2;
  std::unique_ptr<Orderer> orderer;
  int next_tx_ = 0;
};

TEST_F(EndorserFixture, ExecuteOrderValidateRoundTrip) {
  const auto r1 = run_tx("set alice 100");
  EXPECT_EQ(r1.flags[0], TxValidationCode::kValid);
  const auto r2 = run_tx("set bob 50");
  EXPECT_EQ(r2.flags[0], TxValidationCode::kValid);

  // The move reads the committed versions it endorsed against -> valid.
  const auto r3 = run_tx("move alice bob");
  EXPECT_EQ(r3.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(to_string(
                peer1->state().get(StateDb::namespaced("accounts", "alice"))
                    ->value),
            "50");
  EXPECT_EQ(to_string(
                peer2->state().get(StateDb::namespaced("accounts", "bob"))
                    ->value),
            "100");
}

TEST_F(EndorserFixture, RejectsBadProposalSignature) {
  Proposal proposal =
      make_proposal(client, "ch", "accounts", "t", to_bytes("set x 1"));
  proposal.signature.back() ^= 1;
  const ProposalResponse response = peer1->endorse(proposal);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.message.find("signature"), std::string::npos);
  EXPECT_EQ(peer1->proposals_rejected(), 1u);
}

TEST_F(EndorserFixture, RejectsUnknownClient) {
  CertificateAuthority foreign("OrgX", 9);
  const Identity stranger = foreign.issue(Role::kClient, 0, "c0.orgx");
  const Proposal proposal =
      make_proposal(stranger, "ch", "accounts", "t", to_bytes("set x 1"));
  EXPECT_FALSE(peer1->endorse(proposal).ok);
}

TEST_F(EndorserFixture, RejectsUninstalledChaincode) {
  const Proposal proposal =
      make_proposal(client, "ch", "nonexistent", "t", to_bytes("set x 1"));
  const ProposalResponse response = peer1->endorse(proposal);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.message.find("not installed"), std::string::npos);
}

TEST_F(EndorserFixture, ClientDetectsDivergentEndorsers) {
  // Desynchronize peer2's state: it commits an extra block that peer1 never
  // sees, so the two peers execute "move" against different worlds.
  run_tx("set alice 100");
  {
    const Proposal proposal =
        make_proposal(client, "ch", "accounts", "side", to_bytes("set alice 7"));
    const auto responses = std::vector<ProposalResponse>{
        peer1->endorse(proposal), peer2->endorse(proposal)};
    std::string error;
    const auto envelope =
        assemble_envelope(proposal, client, msp, responses, &error);
    ASSERT_TRUE(envelope.has_value());
    auto block = orderer->submit(*envelope);
    peer2->deliver_block(*block);  // only peer2 commits
  }
  const Proposal proposal =
      make_proposal(client, "ch", "accounts", "diverge", to_bytes("move alice bob"));
  const auto responses = std::vector<ProposalResponse>{
      peer1->endorse(proposal), peer2->endorse(proposal)};
  std::string error;
  EXPECT_FALSE(assemble_envelope(proposal, client, msp, responses, &error)
                   .has_value());
  EXPECT_NE(error.find("divergent"), std::string::npos);
}

TEST_F(EndorserFixture, ClientDetectsForgedEndorsement) {
  const Proposal proposal =
      make_proposal(client, "ch", "accounts", "t", to_bytes("set x 1"));
  std::vector<ProposalResponse> responses = {peer1->endorse(proposal),
                                             peer2->endorse(proposal)};
  responses[1].signature.back() ^= 1;
  std::string error;
  EXPECT_FALSE(assemble_envelope(proposal, client, msp, responses, &error)
                   .has_value());
  EXPECT_NE(error.find("signature"), std::string::npos);
}

TEST_F(EndorserFixture, ClientPropagatesEndorserRejection) {
  Proposal proposal =
      make_proposal(client, "ch", "accounts", "t", to_bytes("set x 1"));
  std::vector<ProposalResponse> responses = {peer1->endorse(proposal)};
  proposal.signature.back() ^= 1;
  responses.push_back(peer2->endorse(proposal));  // rejected
  std::string error;
  EXPECT_FALSE(assemble_envelope(proposal, client, msp, responses, &error)
                   .has_value());
  EXPECT_NE(error.find("rejected"), std::string::npos);
}

TEST_F(EndorserFixture, StaleEndorsementConflictsAtValidation) {
  run_tx("set alice 100");
  run_tx("set bob 50");
  // Endorse a move now (reads versions of alice/bob as of block 1/2)...
  const Proposal stale_proposal =
      make_proposal(client, "ch", "accounts", "stale", to_bytes("move alice bob"));
  const auto stale_responses = std::vector<ProposalResponse>{
      peer1->endorse(stale_proposal), peer2->endorse(stale_proposal)};
  std::string error;
  const auto stale_envelope =
      assemble_envelope(stale_proposal, client, msp, stale_responses, &error);
  ASSERT_TRUE(stale_envelope.has_value()) << error;

  // ...but commit another write to alice first.
  run_tx("set alice 1");

  auto block = orderer->submit(*stale_envelope);
  const auto result = peer1->deliver_block(*block);
  peer2->deliver_block(*block);
  EXPECT_EQ(result.flags[0], TxValidationCode::kMvccReadConflict);
}

}  // namespace
}  // namespace bm::fabric

#include <gtest/gtest.h>

#include "net/gossip.hpp"
#include "workload/metrics.hpp"

namespace bm::net {
namespace {

struct GossipHarness {
  GossipHarness(int peers, GossipNetwork::Config config)
      : network(sim, peers, config) {
    network.set_deliver_callback(
        [this](int peer, std::uint64_t block, std::size_t) {
          deliveries[block].push_back(peer);
          delivery_times[block].push_back(
              static_cast<double>(sim.now() - publish_times[block]) /
              sim::kMillisecond);
        });
  }

  void publish(std::uint64_t block, std::size_t bytes) {
    publish_times[block] = sim.now();
    network.publish(0, block, bytes);
  }

  sim::Simulation sim;
  GossipNetwork network;
  std::map<std::uint64_t, std::vector<int>> deliveries;
  std::map<std::uint64_t, std::vector<double>> delivery_times;
  std::map<std::uint64_t, sim::Time> publish_times;
};

TEST(Gossip, PushReachesAllPeersLossless) {
  GossipHarness harness(10, {});
  harness.publish(0, 100'000);
  harness.sim.run();
  EXPECT_EQ(harness.deliveries[0].size(), 10u);
  for (int peer = 0; peer < 10; ++peer)
    EXPECT_TRUE(harness.network.peer_has(peer, 0));
  // Duplicates exist (fanout redundancy) but are bounded by total pushes.
  EXPECT_GT(harness.network.messages_sent(), 9u);
}

TEST(Gossip, DeliversExactlyOncePerPeer) {
  // Push gossip with bounded fanout is probabilistic (a rumor can die out
  // before covering the mesh); anti-entropy guarantees convergence.
  GossipHarness harness(8, {});
  harness.network.start_anti_entropy();
  for (std::uint64_t block = 0; block < 5; ++block)
    harness.publish(block, 50'000);
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);
  harness.network.stop_anti_entropy();
  for (std::uint64_t block = 0; block < 5; ++block) {
    auto& delivered = harness.deliveries[block];
    std::sort(delivered.begin(), delivered.end());
    EXPECT_TRUE(std::adjacent_find(delivered.begin(), delivered.end()) ==
                delivered.end());
    EXPECT_EQ(delivered.size(), 8u);
  }
}

TEST(Gossip, AntiEntropyRepairsLosses) {
  GossipNetwork::Config config;
  // Heavy uniform push loss, through the fault layer (its own seed keeps
  // the topology RNG untouched).
  config.faults = FaultConfig::uniform_loss(0.4, /*seed=*/17);
  config.seed = 17;
  GossipHarness harness(10, config);
  harness.network.start_anti_entropy();
  harness.publish(0, 80'000);
  harness.publish(1, 80'000);
  harness.sim.run_until(harness.sim.now() + 3 * sim::kSecond);
  harness.network.stop_anti_entropy();

  int have = 0;
  for (int peer = 0; peer < 10; ++peer)
    for (std::uint64_t block = 0; block < 2; ++block)
      have += harness.network.peer_has(peer, block) ? 1 : 0;
  EXPECT_EQ(have, 20) << "anti-entropy must repair every gap";
}

TEST(Gossip, AntiEntropyRepairsBurstLosses) {
  // Uniform i.i.d. loss (above) is the easy case; real gossip meshes see
  // correlated bursts. Drive the push path through a Gilbert–Elliott
  // injector (Config::faults) and verify the digest-exchange repair still
  // converges even when whole fanout rounds die together.
  GossipNetwork::Config config;
  config.seed = 23;
  config.faults.loss_good = 0.05;
  config.faults.loss_bad = 0.85;       // near-total loss in bursts
  config.faults.p_good_to_bad = 0.08;
  config.faults.p_bad_to_good = 0.2;
  config.faults.seed = 31;
  GossipHarness harness(10, config);
  harness.network.start_anti_entropy();
  for (std::uint64_t block = 0; block < 3; ++block)
    harness.publish(block, 80'000);
  harness.sim.run_until(harness.sim.now() + 5 * sim::kSecond);
  harness.network.stop_anti_entropy();

  int have = 0;
  for (int peer = 0; peer < 10; ++peer)
    for (std::uint64_t block = 0; block < 3; ++block)
      have += harness.network.peer_has(peer, block) ? 1 : 0;
  EXPECT_EQ(have, 30) << "anti-entropy must repair burst losses too";

  // The injector actually produced correlated losses.
  const FaultStats* stats = harness.network.fault_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->dropped_loss, 0u);
  EXPECT_GT(stats->bad_state_frames, 0u);
}

TEST(Gossip, SmallerBlocksDisseminateFaster) {
  // §5: using the BMac protocol encoding (4-5x smaller) for intra-org
  // dissemination cuts gossip latency.
  GossipNetwork::Config config;
  config.seed = 4;
  GossipHarness full(12, config);
  GossipHarness compact(12, config);
  full.publish(0, 490'000);     // Gossip-encoded 150-tx block
  compact.publish(0, 117'000);  // BMac-protocol encoding of the same block
  full.sim.run();
  compact.sim.run();

  const double full_p95 = workload::percentile(full.delivery_times[0], 95);
  const double compact_p95 =
      workload::percentile(compact.delivery_times[0], 95);
  EXPECT_LT(compact_p95, full_p95);
  EXPECT_GT(full_p95 / compact_p95, 1.5);  // size-dominated dissemination
}

TEST(Gossip, DeterministicForSeed) {
  auto run_once = [] {
    GossipNetwork::Config config;
    config.seed = 9;
    GossipHarness harness(6, config);
    harness.publish(0, 10'000);
    harness.sim.run();
    return harness.network.messages_sent();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Gossip, SinglePeerNetworkTrivial) {
  GossipHarness harness(1, {});
  harness.publish(0, 1000);
  harness.sim.run();
  EXPECT_EQ(harness.deliveries[0].size(), 1u);
  EXPECT_EQ(harness.network.messages_sent(), 0u);
}

}  // namespace
}  // namespace bm::net

#include <gtest/gtest.h>

#include "net/gossip.hpp"
#include "workload/metrics.hpp"

namespace bm::net {
namespace {

struct GossipHarness {
  GossipHarness(int peers, GossipNetwork::Config config)
      : network(sim, peers, config) {
    network.set_deliver_callback(
        [this](int peer, std::uint64_t block, std::size_t) {
          deliveries[block].push_back(peer);
          delivery_times[block].push_back(
              static_cast<double>(sim.now() - publish_times[block]) /
              sim::kMillisecond);
        });
  }

  void publish(std::uint64_t block, std::size_t bytes) {
    publish_times[block] = sim.now();
    network.publish(0, block, bytes);
  }

  sim::Simulation sim;
  GossipNetwork network;
  std::map<std::uint64_t, std::vector<int>> deliveries;
  std::map<std::uint64_t, std::vector<double>> delivery_times;
  std::map<std::uint64_t, sim::Time> publish_times;
};

TEST(Gossip, PushReachesAllPeersLossless) {
  GossipHarness harness(10, {});
  harness.publish(0, 100'000);
  harness.sim.run();
  EXPECT_EQ(harness.deliveries[0].size(), 10u);
  for (int peer = 0; peer < 10; ++peer)
    EXPECT_TRUE(harness.network.peer_has(peer, 0));
  // Duplicates exist (fanout redundancy) but are bounded by total pushes.
  EXPECT_GT(harness.network.messages_sent(), 9u);
}

TEST(Gossip, DeliversExactlyOncePerPeer) {
  // Push gossip with bounded fanout is probabilistic (a rumor can die out
  // before covering the mesh); anti-entropy guarantees convergence.
  GossipHarness harness(8, {});
  harness.network.start_anti_entropy();
  for (std::uint64_t block = 0; block < 5; ++block)
    harness.publish(block, 50'000);
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);
  harness.network.stop_anti_entropy();
  for (std::uint64_t block = 0; block < 5; ++block) {
    auto& delivered = harness.deliveries[block];
    std::sort(delivered.begin(), delivered.end());
    EXPECT_TRUE(std::adjacent_find(delivered.begin(), delivered.end()) ==
                delivered.end());
    EXPECT_EQ(delivered.size(), 8u);
  }
}

TEST(Gossip, AntiEntropyRepairsLosses) {
  GossipNetwork::Config config;
  // Heavy uniform push loss, through the fault layer (its own seed keeps
  // the topology RNG untouched).
  config.faults = FaultConfig::uniform_loss(0.4, /*seed=*/17);
  config.seed = 17;
  GossipHarness harness(10, config);
  harness.network.start_anti_entropy();
  harness.publish(0, 80'000);
  harness.publish(1, 80'000);
  harness.sim.run_until(harness.sim.now() + 3 * sim::kSecond);
  harness.network.stop_anti_entropy();

  int have = 0;
  for (int peer = 0; peer < 10; ++peer)
    for (std::uint64_t block = 0; block < 2; ++block)
      have += harness.network.peer_has(peer, block) ? 1 : 0;
  EXPECT_EQ(have, 20) << "anti-entropy must repair every gap";
}

TEST(Gossip, AntiEntropyRepairsBurstLosses) {
  // Uniform i.i.d. loss (above) is the easy case; real gossip meshes see
  // correlated bursts. Drive the push path through a Gilbert–Elliott
  // injector (Config::faults) and verify the digest-exchange repair still
  // converges even when whole fanout rounds die together.
  GossipNetwork::Config config;
  config.seed = 23;
  config.faults.loss_good = 0.05;
  config.faults.loss_bad = 0.85;       // near-total loss in bursts
  config.faults.p_good_to_bad = 0.08;
  config.faults.p_bad_to_good = 0.2;
  config.faults.seed = 31;
  GossipHarness harness(10, config);
  harness.network.start_anti_entropy();
  for (std::uint64_t block = 0; block < 3; ++block)
    harness.publish(block, 80'000);
  harness.sim.run_until(harness.sim.now() + 5 * sim::kSecond);
  harness.network.stop_anti_entropy();

  int have = 0;
  for (int peer = 0; peer < 10; ++peer)
    for (std::uint64_t block = 0; block < 3; ++block)
      have += harness.network.peer_has(peer, block) ? 1 : 0;
  EXPECT_EQ(have, 30) << "anti-entropy must repair burst losses too";

  // The injector actually produced correlated losses.
  const FaultStats* stats = harness.network.fault_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->dropped_loss, 0u);
  EXPECT_GT(stats->bad_state_frames, 0u);
}

TEST(Gossip, SmallerBlocksDisseminateFaster) {
  // §5: using the BMac protocol encoding (4-5x smaller) for intra-org
  // dissemination cuts gossip latency.
  GossipNetwork::Config config;
  config.seed = 4;
  GossipHarness full(12, config);
  GossipHarness compact(12, config);
  full.publish(0, 490'000);     // Gossip-encoded 150-tx block
  compact.publish(0, 117'000);  // BMac-protocol encoding of the same block
  full.sim.run();
  compact.sim.run();

  const double full_p95 = workload::percentile(full.delivery_times[0], 95);
  const double compact_p95 =
      workload::percentile(compact.delivery_times[0], 95);
  EXPECT_LT(compact_p95, full_p95);
  EXPECT_GT(full_p95 / compact_p95, 1.5);  // size-dominated dissemination
}

TEST(Gossip, DeterministicForSeed) {
  auto run_once = [] {
    GossipNetwork::Config config;
    config.seed = 9;
    GossipHarness harness(6, config);
    harness.publish(0, 10'000);
    harness.sim.run();
    return harness.network.messages_sent();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Gossip, SinglePeerNetworkTrivial) {
  GossipHarness harness(1, {});
  harness.publish(0, 1000);
  harness.sim.run();
  EXPECT_EQ(harness.deliveries[0].size(), 1u);
  EXPECT_EQ(harness.network.messages_sent(), 0u);
}

TEST(Gossip, OutOfRangePeerThrows) {
  // Regression: peer_has/publish (and the lifecycle calls) used to index
  // peers_ unchecked, so a bad peer id was silent UB instead of an error.
  GossipHarness harness(4, {});
  EXPECT_THROW(harness.network.peer_has(-1, 0), std::out_of_range);
  EXPECT_THROW(harness.network.peer_has(4, 0), std::out_of_range);
  EXPECT_THROW(harness.network.publish(-1, 0, std::size_t{100}),
               std::out_of_range);
  EXPECT_THROW(harness.network.publish(7, 0, to_bytes("payload")),
               std::out_of_range);
  EXPECT_THROW(harness.network.set_peer_online(4, false), std::out_of_range);
  EXPECT_THROW(harness.network.reset_peer(-2), std::out_of_range);
  EXPECT_THROW(harness.network.mark_known(5, 1), std::out_of_range);
  // In-range calls still work after the failed ones.
  harness.publish(0, 1000);
  harness.sim.run();
  EXPECT_TRUE(harness.network.peer_has(3, 0));
}

TEST(Gossip, PayloadDeliveredOncePerPeer) {
  GossipHarness harness(6, {});
  std::map<int, std::vector<std::uint64_t>> payload_deliveries;
  harness.network.set_payload_callback(
      [&](int peer, std::uint64_t block, const Bytes& payload) {
        EXPECT_EQ(to_string(payload), "block" + std::to_string(block));
        payload_deliveries[peer].push_back(block);
      });
  harness.network.start_anti_entropy();
  harness.network.publish(0, 0, to_bytes("block0"));
  harness.network.publish(0, 1, to_bytes("block1"));
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);
  harness.network.stop_anti_entropy();
  for (int peer = 0; peer < 6; ++peer) {
    auto& blocks = payload_deliveries[peer];
    std::sort(blocks.begin(), blocks.end());
    EXPECT_EQ(blocks, (std::vector<std::uint64_t>{0, 1})) << "peer " << peer;
  }
}

TEST(Gossip, RepublishKeepsFirstPayload) {
  GossipHarness harness(4, {});
  Bytes seen;
  harness.network.set_payload_callback(
      [&](int peer, std::uint64_t, const Bytes& payload) {
        if (peer == 3) seen = payload;
      });
  harness.network.start_anti_entropy();
  harness.network.publish(0, 0, to_bytes("canonical"));
  harness.network.publish(1, 0, to_bytes("imposter"));  // not re-registered
  harness.sim.run_until(harness.sim.now() + sim::kSecond);
  harness.network.stop_anti_entropy();
  EXPECT_EQ(to_string(seen), "canonical");
}

TEST(Gossip, OfflinePeerMissesBlocksUntilRepair) {
  GossipNetwork::Config config;
  config.seed = 11;
  GossipHarness harness(6, config);
  harness.network.set_peer_online(5, false);
  harness.network.start_anti_entropy();
  harness.publish(0, 40'000);
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);

  // Anti-entropy converged every online peer, but the offline one stayed
  // dark — pushes and digest exchanges aimed at it were dropped.
  EXPECT_FALSE(harness.network.peer_has(5, 0));
  EXPECT_GT(harness.network.dropped_offline(), 0u);
  for (int peer = 0; peer < 5; ++peer)
    EXPECT_TRUE(harness.network.peer_has(peer, 0)) << "peer " << peer;

  // Back online, anti-entropy closes the gap.
  harness.network.set_peer_online(5, true);
  harness.sim.run_until(harness.sim.now() + 2 * sim::kSecond);
  harness.network.stop_anti_entropy();
  EXPECT_TRUE(harness.network.peer_has(5, 0));
}

TEST(Gossip, MarkKnownSuppressesRedelivery) {
  GossipHarness harness(5, {});
  int deliveries_to_4 = 0;
  harness.network.set_payload_callback(
      [&](int peer, std::uint64_t, const Bytes&) {
        if (peer == 4) ++deliveries_to_4;
      });
  // State transfer already handed peer 4 the block out of band.
  harness.network.mark_known(4, 0);
  harness.network.start_anti_entropy();
  harness.network.publish(0, 0, to_bytes("block0"));
  harness.sim.run_until(harness.sim.now() + sim::kSecond);
  harness.network.stop_anti_entropy();
  EXPECT_EQ(deliveries_to_4, 0);
  EXPECT_TRUE(harness.network.peer_has(4, 0));
}

}  // namespace
}  // namespace bm::net

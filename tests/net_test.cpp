#include <gtest/gtest.h>

#include "net/faults.hpp"
#include "net/transport.hpp"

namespace bm::net {
namespace {

TEST(Link, SerializationDelayAtLineRate) {
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0, .propagation = 0, .jitter_max = 0});
  // 1250 bytes at 1 Gbps = 10 us.
  EXPECT_EQ(link.serialization_delay(1250), 10 * sim::kMicrosecond);
  // 10 Gbps link is 10x faster.
  Link fast(sim, {.gbps = 10.0});
  EXPECT_EQ(fast.serialization_delay(1250), sim::kMicrosecond);
}

TEST(Link, DeliveryTimeIncludesPropagation) {
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0, .propagation = 100 * sim::kMicrosecond});
  sim::Time delivered_at = -1;
  link.send(1250, [&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered_at, 110 * sim::kMicrosecond);
}

TEST(Link, FramesQueueBackToBack) {
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0, .propagation = 0});
  std::vector<sim::Time> arrivals;
  for (int i = 0; i < 3; ++i)
    link.send(1250, [&] { arrivals.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 10 * sim::kMicrosecond);
  EXPECT_EQ(arrivals[1], 20 * sim::kMicrosecond);
  EXPECT_EQ(arrivals[2], 30 * sim::kMicrosecond);
  EXPECT_EQ(link.bytes_sent(), 3750u);
  EXPECT_EQ(link.frames_sent(), 3u);
}

TEST(FaultyChannel, LossDropsDeliveries) {
  // Loss lives in the fault layer now — the Link itself never drops.
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0});
  FaultyChannel channel(sim, link, FaultConfig::uniform_loss(1.0));
  bool delivered = false;
  channel.set_receiver([&](Bytes) { delivered = true; });
  channel.send(Bytes(100));
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(channel.stats().dropped_total(), 1u);
  EXPECT_EQ(link.frames_sent(), 1u);  // the NIC transmits doomed frames too
}

TEST(Link, JitterIsBoundedAndDeterministic) {
  auto run_once = [] {
    sim::Simulation sim;
    Link link(sim,
              {.gbps = 1.0, .propagation = 0, .jitter_max = sim::kMillisecond,
               .seed = 5});
    std::vector<sim::Time> arrivals;
    for (int i = 0; i < 20; ++i)
      link.send(125, [&] { arrivals.push_back(sim.now()); });
    sim.run();
    return arrivals;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // same seed => same jitter
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::Time base = static_cast<sim::Time>(i + 1) * sim::kMicrosecond;
    EXPECT_GE(a[i], base);
    EXPECT_LT(a[i], base + sim::kMillisecond);
  }
}

TEST(TcpStream, LargeMessageSlowerThanSmall) {
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0, .propagation = 50 * sim::kMicrosecond});
  TcpStream::Config config;
  config.software_jitter_max = 0;
  TcpStream tcp(sim, link, config);

  sim::Time small_done = 0, large_done = 0;
  tcp.send_message(10'000, [&] { small_done = sim.now(); });
  sim.run();
  const sim::Time start_large = sim.now();
  tcp.send_message(500'000, [&] { large_done = sim.now(); });
  sim.run();
  EXPECT_GT(large_done - start_large, small_done);
  // 500 KB at 1 Gbps is 4 ms of pure serialization; the model must charge
  // at least that plus software costs.
  EXPECT_GT(large_done - start_large, 4 * sim::kMillisecond);
}

TEST(UdpChannel, FragmentsAtMtu) {
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0, .propagation = 0});
  UdpChannel::Config config;
  config.software_jitter_max = 0;
  UdpChannel udp(sim, link, config);
  bool delivered = false;
  udp.send_datagram(4000, [&] { delivered = true; });  // 3 fragments
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(link.frames_sent(), 3u);
  EXPECT_GT(link.bytes_sent(), 4000u);  // per-fragment overhead added
}

TEST(Transports, UdpFasterThanTcpForBlocks) {
  // The Fig. 6b effect at a single-block granularity: a BMac-protocol-sized
  // payload over UDP beats the Gossip-sized payload over TCP.
  sim::Simulation sim;
  Link link(sim, {.gbps = 1.0, .propagation = 50 * sim::kMicrosecond});
  TcpStream::Config tcp_config;
  tcp_config.software_jitter_max = 0;
  UdpChannel::Config udp_config;
  udp_config.software_jitter_max = 0;
  TcpStream tcp(sim, link, tcp_config);
  UdpChannel udp(sim, link, udp_config);

  sim::Time udp_done = 0;
  udp.send_datagram(110'000, [&] { udp_done = sim.now(); });  // BMac block
  sim.run();
  sim::Time tcp_start = sim.now(), tcp_done = 0;
  tcp.send_message(460'000, [&] { tcp_done = sim.now(); });  // Gossip block
  sim.run();
  EXPECT_LT(udp_done, tcp_done - tcp_start);
}

}  // namespace
}  // namespace bm::net

// Randomized differential testing: the strongest form of the paper's §4.1
// no-mismatch check. For each seed, a random network shape (orgs, policy,
// fault rates, hardware architecture) produces random workloads that flow
// through BOTH validator implementations; every flag and commit hash must
// agree. Also: fuzzing of the hardware receiver with corrupted packets —
// the protocol_processor must never crash and never manufacture a valid
// transaction out of damaged input.
#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "fabric/validator.hpp"
#include "workload/network_harness.hpp"

namespace bm {
namespace {

using namespace bm::fabric;

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialSweep, RandomConfigSwHwAgreement) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  workload::NetworkOptions options;
  options.orgs = 2 + static_cast<int>(rng.uniform(3));  // 2..4
  options.chaincode = rng.chance(0.5) ? workload::ChaincodeKind::kSmallbank
                                      : workload::ChaincodeKind::kDrm;
  const int k = 1 + static_cast<int>(rng.uniform(
                        static_cast<std::uint64_t>(options.orgs)));
  options.policy_text = std::to_string(k) + "-outof-" +
                        std::to_string(options.orgs) + " orgs";
  options.block_size = 3 + rng.uniform(8);
  options.seed = seed * 31 + 7;
  options.bad_signature_rate = rng.uniform_double() * 0.3;
  options.missing_endorsement_rate = rng.uniform_double() * 0.3;
  options.conflicting_read_rate = rng.uniform_double() * 0.3;

  bmac::HwConfig hw;
  hw.tx_validators = 1 + static_cast<int>(rng.uniform(8));
  hw.engines_per_vscc = 1 + static_cast<int>(rng.uniform(3));
  hw.short_circuit_vscc = rng.chance(0.8);

  workload::FabricNetworkHarness harness(options);
  StateDb sw_db;
  Ledger sw_ledger;
  SoftwareValidator sw(harness.msp(), harness.policies());

  sim::Simulation sim;
  bmac::BmacPeer peer(sim, harness.msp(), hw, harness.policies());
  peer.start();
  bmac::ProtocolSender sender(harness.msp());

  const int blocks = 3;
  std::vector<BlockValidationResult> sw_results;
  for (int b = 0; b < blocks; ++b) {
    const Block block = harness.next_block();
    sw_results.push_back(sw.validate_and_commit(block, sw_db, sw_ledger));
    for (const auto& packet : sender.send(block).packets)
      peer.deliver_packet(packet);
    peer.deliver_block(block);
    sim.run();
  }

  ASSERT_EQ(peer.results().size(), static_cast<std::size_t>(blocks));
  for (int b = 0; b < blocks; ++b) {
    EXPECT_EQ(peer.results()[static_cast<std::size_t>(b)].flags,
              sw_results[static_cast<std::size_t>(b)].flags)
        << "seed " << seed << " block " << b << " (policy "
        << options.policy_text << ", hw " << hw.name() << ")";
  }
  EXPECT_EQ(peer.ledger().last().commit_hash, sw_ledger.last().commit_hash)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

class ReceiverFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReceiverFuzz, CorruptedPacketsNeverValidateForged) {
  const std::uint64_t seed = GetParam();
  workload::NetworkOptions options;
  options.block_size = 4;
  options.seed = 99;
  workload::FabricNetworkHarness harness(options);
  bmac::ProtocolSender sender(harness.msp());
  const Block block = harness.next_block();
  const bmac::SendResult send = sender.send(block);

  Rng rng(seed);
  bmac::HwIdentityCache cache;
  bmac::ProtocolReceiver receiver(cache);
  for (const auto& packet : send.packets) {
    Bytes wire = packet.encode();
    // Flip 1-4 bytes anywhere in the packet.
    const int flips = 1 + static_cast<int>(rng.uniform(4));
    for (int i = 0; i < flips; ++i)
      wire[rng.uniform(wire.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(255));

    const auto decoded = bmac::BmacPacket::decode(wire);
    if (!decoded) continue;  // framing rejected: fine
    const auto emitted = receiver.on_packet(*decoded);  // must not crash
    // Any transaction extracted from a corrupted stream must fail one of
    // the real checks downstream: either structurally (parse_ok=false /
    // well_formed=false) or cryptographically (signature verification).
    for (const auto& tx : emitted.txs) {
      if (!tx.parse_ok || !tx.verify.well_formed) continue;
      // The payload digest was recomputed from corrupted bytes; a valid
      // signature over it would be a forgery. Verify it really fails —
      // unless this mutation landed outside every annotated field, in
      // which case the reconstructed section equals the original and
      // verification legitimately succeeds.
      if (tx.verify.execute()) {
        // The section index lives in the (unauthenticated) L7 header and
        // may itself be corrupted; skip the cross-check if out of range.
        if (tx.tx_seq >= block.envelopes.size()) continue;
        const auto truth =
            parse_envelope(block.envelopes[tx.tx_seq]);
        ASSERT_TRUE(truth.has_value());
        const auto* entry = cache.find(
            *harness.msp().encode(truth->creator));
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(crypto::sha256(truth->payload_bytes), tx.verify.digest)
            << "verified digest must match the authentic payload";
      }
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReceiverFuzz,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace bm

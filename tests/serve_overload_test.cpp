// Overload behaviour of the serving front end (serve/admission.hpp,
// serve/pipeline.hpp): bounded queues under saturation, explicit
// kOverloaded shedding with retry-after, priority classes, token-bucket
// rate limiting with watermark backpressure, deadline cancellation,
// deterministic reruns, and flag-equivalence of admitted transactions with
// the closed-loop reference pipeline.
#include <gtest/gtest.h>

#include "serve/pipeline.hpp"

namespace bm::serve {
namespace {

// --- AdmissionQueue unit tests ----------------------------------------------

TEST(AdmissionQueue, AdmitsUntilCapacityThenShedsWithRetryAfter) {
  AdmissionConfig config;
  config.queue_capacity = 4;
  config.classes = 1;
  AdmissionQueue queue(config);

  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_TRUE(queue.offer(i, 0, 0).admitted());
  for (std::uint64_t i = 4; i < 6; ++i) {
    const AdmissionDecision decision = queue.offer(i, 0, 0);
    EXPECT_EQ(decision.result, AdmitResult::kOverloaded);
    EXPECT_GT(decision.retry_after, 0u);
  }
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.stats().admitted, 4u);
  EXPECT_EQ(queue.stats().shed_queue_full, 2u);
  EXPECT_EQ(queue.stats().depth_high_water, 4u);

  // Popping frees a slot; the next offer is admitted again.
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.offer(6, 0, 0).admitted());
}

TEST(AdmissionQueue, LowPriorityClassShedsFirst) {
  AdmissionConfig config;
  config.queue_capacity = 8;
  config.classes = 2;  // class 1 may only use the first 8 >> 1 = 4 slots
  AdmissionQueue queue(config);

  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_TRUE(queue.offer(i, 1, 0).admitted());
  EXPECT_EQ(queue.offer(4, 1, 0).result, AdmitResult::kOverloaded);

  // Class 0 still gets in until the whole queue is full.
  for (std::uint64_t i = 5; i < 9; ++i)
    EXPECT_TRUE(queue.offer(i, 0, 0).admitted());
  EXPECT_EQ(queue.offer(9, 0, 0).result, AdmitResult::kOverloaded);

  // pop() drains strictly by class: all of class 0 before any class 1.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(queue.pop()->klass, 0);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(queue.pop()->klass, 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(AdmissionQueue, TokenBucketCapsSustainedRate) {
  AdmissionConfig config;
  config.queue_capacity = 100;
  config.classes = 1;
  config.token_rate_tps = 1000;
  config.bucket_capacity = 5;
  AdmissionQueue queue(config);

  // The bucket starts full: a 5-request burst passes, the 6th is shed with
  // a retry-after of about one token time (1 ms at 1000 tps).
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_TRUE(queue.offer(i, 0, 0).admitted());
  const AdmissionDecision shed = queue.offer(5, 0, 0);
  EXPECT_EQ(shed.result, AdmitResult::kOverloaded);
  EXPECT_GT(shed.retry_after, 0u);
  EXPECT_LE(shed.retry_after, 2 * sim::kMillisecond);
  EXPECT_EQ(queue.stats().shed_rate_limited, 1u);

  // 10 ms later the bucket has refilled (capped at capacity 5).
  for (std::uint64_t i = 6; i < 11; ++i)
    EXPECT_TRUE(queue.offer(i, 0, 10 * sim::kMillisecond).admitted());
  EXPECT_EQ(queue.offer(11, 0, 10 * sim::kMillisecond).result,
            AdmitResult::kOverloaded);
}

TEST(AdmissionQueue, PressureSlowsTheRefill) {
  AdmissionConfig config;
  config.queue_capacity = 100;
  config.classes = 1;
  config.token_rate_tps = 1000;
  config.bucket_capacity = 1;
  config.pressure_refill_factor = 0.25;
  AdmissionQueue queue(config);

  EXPECT_TRUE(queue.offer(0, 0, 0).admitted());  // drains the bucket
  queue.set_pressure(true, 0);
  EXPECT_EQ(queue.stats().pressure_raised, 1u);
  queue.set_pressure(true, 0);  // idempotent
  EXPECT_EQ(queue.stats().pressure_raised, 1u);

  // At 250 tps effective refill a token takes 4 ms, not 1 ms.
  EXPECT_EQ(queue.offer(1, 0, 2 * sim::kMillisecond).result,
            AdmitResult::kOverloaded);
  EXPECT_TRUE(queue.offer(2, 0, 4 * sim::kMillisecond).admitted());

  // Releasing pressure restores the full rate.
  queue.set_pressure(false, 4 * sim::kMillisecond);
  EXPECT_TRUE(queue.offer(3, 0, 5 * sim::kMillisecond).admitted());
}

// Regression: pressure_refill_factor == 0 (a legal "stop admitting under
// pressure" setting) made the retry-after hints divide by a zero refill
// rate — undefined behaviour on the int cast. Both shed paths must fall
// back to the 1 ms hint instead.
TEST(AdmissionQueue, ZeroPressureRefillFactorShedsWithFiniteRetryAfter) {
  AdmissionConfig config;
  config.queue_capacity = 2;
  config.classes = 1;
  config.token_rate_tps = 1000;
  config.bucket_capacity = 3;
  config.pressure_refill_factor = 0.0;
  AdmissionQueue queue(config);
  queue.set_pressure(true, 0);

  // Rate-limited shed path: the bucket never refills under pressure.
  EXPECT_TRUE(queue.offer(0, 0, 0).admitted());
  EXPECT_TRUE(queue.offer(1, 0, 0).admitted());
  // Queue is now full (capacity 2): queue-full shed path, zero rate.
  const AdmissionDecision full = queue.offer(2, 0, 0);
  EXPECT_EQ(full.result, AdmitResult::kOverloaded);
  EXPECT_EQ(full.retry_after, sim::kMillisecond);
  EXPECT_EQ(queue.stats().shed_queue_full, 1u);

  // Drain the queue; the third token goes, then the empty bucket (which
  // refills at 0 tps) sheds rate-limited — also with the finite fallback.
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.offer(3, 0, sim::kSecond).admitted());
  const AdmissionDecision limited = queue.offer(4, 0, 2 * sim::kSecond);
  EXPECT_EQ(limited.result, AdmitResult::kOverloaded);
  EXPECT_EQ(limited.retry_after, sim::kMillisecond);
  EXPECT_EQ(queue.stats().shed_rate_limited, 1u);
}

// --- end-to-end pipeline tests ----------------------------------------------

ServeOptions small_scenario(std::uint64_t seed = 7) {
  ServeOptions options;
  options.network.seed = seed;
  options.traffic.seed = seed ^ 0x9E3779B97F4A7C15ull;
  options.traffic.rate_tps = 2000;
  options.duration = 150 * sim::kMillisecond;
  options.ingress.max_batch = 50;
  return options;
}

TEST(ServePipeline, OverloadShedsExplicitlyAndQueuesStayBounded) {
  ServeOptions options = small_scenario();
  options.traffic.rate_tps = 6000;
  options.duration = 300 * sim::kMillisecond;
  options.admission.queue_capacity = 64;
  options.endorse.workers = 2;
  options.endorse.service_base = sim::kMillisecond;  // ~2000 tps capacity
  options.endorse.per_endorsement = 0;
  options.endorse.deadline = 0;  // isolate shedding from cancellation
  options.validate_vcpus = 1;    // slow commit stage: exercise watermarks
  options.ingress.high_watermark = 3;
  options.ingress.low_watermark = 1;

  const ServeReport report = run_serve(options);
  EXPECT_TRUE(report.drained) << report.to_text();

  // ~3x overload: a large fraction of offered load is refused explicitly.
  EXPECT_GT(report.shed_total(), report.offered / 3);
  EXPECT_GT(report.committed_txs, 0u);

  // Nothing queues unboundedly.
  EXPECT_LE(report.admission_depth_high_water,
            options.admission.queue_capacity);
  EXPECT_LE(report.ingress_high_water, options.ingress.max_batch);

  // The slow commit stage raised backpressure at least once.
  EXPECT_GE(report.pressure_raised, 1u);

  // Conservation: every offered request is accounted for exactly once.
  EXPECT_EQ(report.offered, report.admitted + report.shed_total());
  EXPECT_EQ(report.admitted, report.committed_txs + report.timed_out);
}

TEST(ServePipeline, DeadlineExpiredRequestsAreCancelledNotExecuted) {
  ServeOptions options = small_scenario(13);
  options.traffic.rate_tps = 2000;
  options.duration = 200 * sim::kMillisecond;
  options.admission.queue_capacity = 512;  // deep queue: waits exceed the SLO
  options.endorse.workers = 1;
  options.endorse.service_base = 2 * sim::kMillisecond;  // ~500 tps capacity
  options.endorse.per_endorsement = 0;
  options.endorse.deadline = 10 * sim::kMillisecond;

  const ServeReport report = run_serve(options);
  EXPECT_TRUE(report.drained) << report.to_text();
  EXPECT_GT(report.timed_out, 0u);
  EXPECT_GT(report.committed_txs, 0u);
  EXPECT_EQ(report.admitted, report.committed_txs + report.timed_out);
}

TEST(ServePipeline, DeterministicRerunsReproduceCountsExactly) {
  ServeOptions options = small_scenario(29);
  options.traffic.process = ArrivalProcess::kMmpp;
  options.traffic.rate_tps = 1500;
  options.admission.queue_capacity = 96;
  options.admission.token_rate_tps = 1800;
  options.admission.bucket_capacity = 40;
  options.endorse.workers = 4;

  const ServeReport a = run_serve(options);
  const ServeReport b = run_serve(options);

  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed_queue_full, b.shed_queue_full);
  EXPECT_EQ(a.shed_rate_limited, b.shed_rate_limited);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_EQ(a.valid_txs, b.valid_txs);
  EXPECT_EQ(a.blocks_committed, b.blocks_committed);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.pressure_raised, b.pressure_raised);
  EXPECT_DOUBLE_EQ(a.total_ms.p99, b.total_ms.p99);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_GT(a.shed_total() + a.timed_out, 0u);  // the run exercised overload
}

TEST(ServePipeline, AdmittedTxsCommitWithReferenceFlagsUnderFaults) {
  // Fault knobs on: the committed blocks carry a nontrivial mix of flags,
  // and the equivalence check replays them through an independent backend
  // against the closed-loop reference results.
  ServeOptions options = small_scenario(31);
  options.network.bad_signature_rate = 0.05;
  options.network.missing_endorsement_rate = 0.05;
  options.network.conflicting_read_rate = 0.10;
  options.duration = 120 * sim::kMillisecond;
  options.check_equivalence = true;

  const ServeReport report = run_serve(options);
  EXPECT_TRUE(report.drained) << report.to_text();
  EXPECT_TRUE(report.flags_match) << report.mismatch;
  EXPECT_GT(report.committed_txs, 0u);
  EXPECT_LT(report.valid_txs, report.committed_txs);  // faults did land
  EXPECT_FALSE(report.blocks.empty());
}

TEST(ServePipeline, ParallelSigningMatchesInlineByteForByte) {
  // The block-cut ECDSA fan-out (ThreadPool::parallel_for) must be pure
  // wall-clock parallelism: same scenario, same blocks, same bytes.
  ServeOptions inline_options = small_scenario(37);
  inline_options.duration = 100 * sim::kMillisecond;
  inline_options.keep_blocks = true;
  inline_options.endorse.sign_threads = 1;
  ServeOptions parallel_options = inline_options;
  parallel_options.endorse.sign_threads = 4;

  const ServeReport a = run_serve(inline_options);
  const ServeReport b = run_serve(parallel_options);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  ASSERT_FALSE(a.blocks.empty());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].header, b.blocks[i].header);
    EXPECT_EQ(a.blocks[i].envelopes, b.blocks[i].envelopes);
    EXPECT_EQ(a.blocks[i].metadata, b.blocks[i].metadata);
  }
  EXPECT_EQ(a.valid_txs, b.valid_txs);
}

TEST(ServePipeline, ReportTextIsDeterministicAndComplete) {
  ServeOptions options = small_scenario(41);
  options.duration = 60 * sim::kMillisecond;
  const ServeReport report = run_serve(options);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("offered"), std::string::npos);
  EXPECT_NE(text.find("goodput"), std::string::npos);
  EXPECT_NE(text.find("p99.9"), std::string::npos);
  EXPECT_NE(text.find("drained: yes"), std::string::npos);
}

}  // namespace
}  // namespace bm::serve

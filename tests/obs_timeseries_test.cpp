// Continuous-telemetry sampler (src/obs/timeseries.hpp): deterministic
// sim-time sampling, counter-rate derivation, and the artifact contracts
// (docs/OBSERVABILITY.md).
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/timeseries.hpp"

namespace bm::obs {
namespace {

TimeSeriesConfig every_5ms() {
  TimeSeriesConfig config;
  config.interval = 5 * sim::kMillisecond;
  return config;
}

/// One scripted run: a counter stepping at known times, a gauge moving, a
/// histogram observing. Returns the sampler's JSON artifact.
std::string scripted_run_json(std::string* csv = nullptr) {
  sim::Simulation sim;
  Registry registry;
  Counter& work = registry.counter("work_total", "units of work done");
  Gauge& depth = registry.gauge("queue_depth", "queued right now");
  Histogram& lat = registry.histogram("latency_ms", {1.0, 5.0, 25.0}, "latency");

  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();
  // 10 units of work per ms for the first 10 ms, then idle.
  for (int t = 1; t <= 10; ++t)
    sim.schedule(static_cast<sim::Time>(t) * sim::kMillisecond, [&] {
      work.inc(10);
      depth.set(static_cast<double>(t % 4));
      lat.observe(static_cast<double>(t));
    });
  sim.run_until(20 * sim::kMillisecond);
  sampler.sample_now();
  sampler.stop();
  if (csv != nullptr) *csv = sampler.to_csv();
  return sampler.to_json();
}

TEST(TimeSeriesSampler, SamplesCountersAtSimTimes) {
  sim::Simulation sim;
  Registry registry;
  Counter& c = registry.counter("c_total", "test");
  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();
  sim.schedule(2 * sim::kMillisecond, [&] { c.inc(4); });
  sim.schedule(7 * sim::kMillisecond, [&] { c.inc(6); });
  sim.run_until(10 * sim::kMillisecond);
  sampler.stop();

  // Baseline at 0 ms plus ticks at 5 ms and 10 ms.
  const std::vector<sim::Time> want_at = {0, 5 * sim::kMillisecond,
                                          10 * sim::kMillisecond};
  EXPECT_EQ(sampler.sample_times(), want_at);
  const std::vector<double> want_values = {0, 4, 10};
  EXPECT_EQ(sampler.values("c_total"), want_values);
}

TEST(TimeSeriesSampler, CounterRateIsDeltaOverDtSeconds) {
  sim::Simulation sim;
  Registry registry;
  Counter& c = registry.counter("c_total", "test");
  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();
  sim.schedule(1 * sim::kMillisecond, [&] { c.inc(50); });
  sim.schedule(6 * sim::kMillisecond, [&] { c.inc(25); });
  sim.run_until(10 * sim::kMillisecond);
  sampler.stop();

  const std::vector<double> rates = sampler.rates("c_total");
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 0);       // baseline: (0 - 0) / anything
  EXPECT_DOUBLE_EQ(rates[1], 10000);   // 50 in 5 ms
  EXPECT_DOUBLE_EQ(rates[2], 5000);    // 25 in 5 ms
}

TEST(TimeSeriesSampler, MidRunSeriesBackfilledWithZeros) {
  sim::Simulation sim;
  Registry registry;
  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();
  // The metric does not exist until 7 ms in.
  sim.schedule(7 * sim::kMillisecond, [&] {
    registry.counter("late_total", "appears mid-run").inc(3);
  });
  sim.run_until(10 * sim::kMillisecond);
  sampler.stop();

  const std::vector<double> want = {0, 0, 3};  // 0 ms, 5 ms, 10 ms
  EXPECT_EQ(sampler.values("late_total"), want);
}

TEST(TimeSeriesSampler, HistogramsBecomeCountAndSumColumns) {
  sim::Simulation sim;
  Registry registry;
  Histogram& h = registry.histogram("lat_ms", {1.0, 10.0}, "test");
  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();
  sim.schedule(3 * sim::kMillisecond, [&] {
    h.observe(2.0);
    h.observe(4.0);
  });
  sim.run_until(5 * sim::kMillisecond);
  sampler.stop();

  const std::vector<double> want_count = {0, 2};
  const std::vector<double> want_sum = {0, 6};
  EXPECT_EQ(sampler.values("lat_ms_count"), want_count);
  EXPECT_EQ(sampler.values("lat_ms_sum"), want_sum);
}

TEST(TimeSeriesSampler, DuplicateTimestampCollapsed) {
  sim::Simulation sim;
  Registry registry;
  registry.counter("c_total", "test");
  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();       // baseline at 0
  sampler.sample_now();  // same instant: skipped
  EXPECT_EQ(sampler.sample_count(), 1u);
}

TEST(TimeSeriesSampler, EmptyRegistryStillEmitsValidArtifacts) {
  sim::Simulation sim;
  Registry registry;
  TimeSeriesSampler sampler(sim, registry, every_5ms());
  sampler.start();
  sim.run_until(10 * sim::kMillisecond);
  sampler.stop();

  EXPECT_EQ(sampler.series_count(), 0u);
  const std::string json = sampler.to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 3"), std::string::npos);
  EXPECT_EQ(sampler.to_csv(), "at_ns\n0\n5000000\n10000000\n");
}

TEST(TimeSeriesSampler, SameScriptProducesByteIdenticalArtifacts) {
  std::string csv_a, csv_b;
  const std::string json_a = scripted_run_json(&csv_a);
  const std::string json_b = scripted_run_json(&csv_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(csv_a, csv_b);
  // And the artifact carries the contract markers the selfcheck validates.
  EXPECT_NE(json_a.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json_a.find("\"interval_ns\": 5000000"), std::string::npos);
  EXPECT_NE(json_a.find("\"work_total\""), std::string::npos);
  EXPECT_NE(json_a.find("\"rate_per_s\""), std::string::npos);
  EXPECT_NE(json_a.find("\"latency_ms_count\""), std::string::npos);
}

TEST(TimeSeriesSampler, IncludePrefixesFilterSeries) {
  sim::Simulation sim;
  Registry registry;
  registry.counter("serve_admitted_total", "test").inc();
  registry.counter("chaos_drops_total", "test").inc();
  TimeSeriesConfig config = every_5ms();
  config.include_prefixes = {"serve_"};
  TimeSeriesSampler sampler(sim, registry, config);
  sampler.start();
  EXPECT_EQ(sampler.series_count(), 1u);
  EXPECT_TRUE(sampler.values("chaos_drops_total").empty());
}

// Satellite: the Registry refuses a histogram re-registration whose bucket
// bounds disagree with the first — silent bound drift would corrupt every
// windowed-quantile computation built on the bucket layout.
TEST(Registry, HistogramReRegistrationWithDifferentBoundsThrows) {
  Registry registry;
  registry.histogram("lat_ms", {1.0, 5.0}, "test");
  EXPECT_NO_THROW(registry.histogram("lat_ms", {1.0, 5.0}, "test"));
  EXPECT_THROW(registry.histogram("lat_ms", {1.0, 9.0}, "test"),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("lat_ms", {1.0}, "test"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bm::obs

#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "fabric/orderer.hpp"
#include "fabric/private_data.hpp"
#include "fabric/validator.hpp"

namespace bm::fabric {
namespace {

TEST(PrivateData, HashedKeysAreNamespacedAndStable) {
  const std::string k1 = private_hashed_key("collectionA", "secret");
  EXPECT_EQ(k1, private_hashed_key("collectionA", "secret"));
  EXPECT_NE(k1, private_hashed_key("collectionB", "secret"));
  EXPECT_NE(k1, private_hashed_key("collectionA", "other"));
  EXPECT_EQ(k1.rfind("pvt~collectionA~", 0), 0u);
}

TEST(PrivateData, ValueHashHidesContent) {
  const Bytes hash = private_value_hash(to_bytes("salary=100000"));
  EXPECT_EQ(hash.size(), 32u);
  EXPECT_FALSE(equal(hash, to_bytes("salary=100000")));
  EXPECT_TRUE(PrivateDataStore::matches_ledger_hash(to_bytes("salary=100000"),
                                                    hash));
  EXPECT_FALSE(PrivateDataStore::matches_ledger_hash(to_bytes("salary=1"),
                                                     hash));
}

TEST(PrivateData, StoreRoundTrip) {
  PrivateDataStore store;
  store.put("deals", "contract-7", to_bytes("price: 1.2M"));
  const auto value = store.get("deals", "contract-7");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(to_string(*value), "price: 1.2M");
  EXPECT_FALSE(store.get("deals", "contract-8").has_value());
  EXPECT_FALSE(store.get("other", "contract-7").has_value());
}

TEST(PrivateData, RwSetFoldingMarshalsLikeAnyOtherEntry) {
  ReadWriteSet rwset;
  add_private_read(rwset, "deals", "contract-7", Version{3, 1});
  add_private_write(rwset, "deals", "contract-7", to_bytes("price: 1.3M"));
  const auto back = ReadWriteSet::unmarshal(rwset.marshal());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, rwset);
  EXPECT_EQ(back->writes[0].value.size(), 32u);  // hash, not cleartext
}

// §5's claim, end to end: a transaction carrying private-collection hashes
// validates identically on the software peer and the BMac hardware peer,
// with zero changes to either validator.
TEST(PrivateData, ValidatesThroughBothPeersUnchanged) {
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  auto& org2 = msp.add_org("Org2");
  const Identity client = org1.issue(Role::kClient, 0, "c0");
  const Identity peer1 = org1.issue(Role::kPeer, 0, "p1");
  const Identity peer2 = org2.issue(Role::kPeer, 0, "p2");
  Orderer orderer(org1.issue(Role::kOrderer, 0, "o0"), {.max_tx_per_block = 1});
  std::map<std::string, EndorsementPolicy> policies;
  policies.emplace("deals_cc",
                   parse_policy_or_throw("Org1 & Org2", msp.org_names()));

  PrivateDataStore org1_private;  // side channel among authorized peers

  // Tx 1: create a private deal. Tx 2: update it reading the prior version.
  TxProposal create;
  create.channel_id = "ch";
  create.chaincode_id = "deals_cc";
  create.tx_id = "create-deal";
  add_private_write(create.rwset, "deals", "contract-7",
                    to_bytes("price: 1.2M"));
  org1_private.put("deals", "contract-7", to_bytes("price: 1.2M"));

  TxProposal update;
  update.channel_id = "ch";
  update.chaincode_id = "deals_cc";
  update.tx_id = "update-deal";
  add_private_read(update.rwset, "deals", "contract-7", Version{0, 0});
  add_private_write(update.rwset, "deals", "contract-7",
                    to_bytes("price: 1.3M"));

  // The create commits in block 0; the update (which reads the committed
  // version) follows in block 1 — same-block reads of freshly written keys
  // would conflict under mvcc, as in Fabric.
  const auto block0 =
      orderer.submit(build_envelope(create, client, {&peer1, &peer2}));
  const auto block1 =
      orderer.submit(build_envelope(update, client, {&peer1, &peer2}));
  ASSERT_TRUE(block0.has_value() && block1.has_value());

  // Software peer.
  StateDb sw_db;
  Ledger sw_ledger;
  SoftwareValidator sw(msp, policies);
  const auto r0 = sw.validate_and_commit(*block0, sw_db, sw_ledger);
  const auto sw_result = sw.validate_and_commit(*block1, sw_db, sw_ledger);
  EXPECT_EQ(r0.flags[0], TxValidationCode::kValid);
  EXPECT_TRUE(sw_result.block_valid);
  EXPECT_EQ(sw_result.flags[0], TxValidationCode::kValid);

  // BMac peer, full protocol + hardware path.
  sim::Simulation sim;
  bmac::BmacPeer hw_peer(sim, msp, bmac::HwConfig{}, policies);
  hw_peer.start();
  bmac::ProtocolSender sender(msp);
  for (const auto* block : {&*block0, &*block1}) {
    for (const auto& pkt : sender.send(*block).packets)
      hw_peer.deliver_packet(pkt);
    hw_peer.deliver_block(*block);
    sim.run();
  }
  ASSERT_EQ(hw_peer.results().size(), 2u);
  EXPECT_EQ(hw_peer.results()[1].flags, sw_result.flags);
  EXPECT_EQ(hw_peer.ledger().last().commit_hash, sw_ledger.last().commit_hash);

  // The ledger holds only the hash; an authorized org can prove the
  // disclosed private value against it.
  const std::string hashed_key = StateDb::namespaced(
      "deals_cc", private_hashed_key("deals", "contract-7"));
  const auto committed = sw_db.get(hashed_key);
  ASSERT_TRUE(committed.has_value());
  EXPECT_EQ(committed->version, (Version{1, 0}));  // updated by block 1
  EXPECT_TRUE(PrivateDataStore::matches_ledger_hash(to_bytes("price: 1.3M"),
                                                    committed->value));
  EXPECT_FALSE(PrivateDataStore::matches_ledger_hash(to_bytes("price: 1.2M"),
                                                     committed->value));
}

TEST(PrivateData, StalePrivateReadConflictsLikeAnyRead) {
  Msp msp;
  auto& org1 = msp.add_org("Org1");
  const Identity client = org1.issue(Role::kClient, 0, "c0");
  const Identity peer1 = org1.issue(Role::kPeer, 0, "p1");
  Orderer orderer(org1.issue(Role::kOrderer, 0, "o0"), {.max_tx_per_block = 2});
  std::map<std::string, EndorsementPolicy> policies;
  policies.emplace("cc", parse_policy_or_throw("Org1", msp.org_names()));

  TxProposal write_tx;
  write_tx.channel_id = "ch";
  write_tx.chaincode_id = "cc";
  write_tx.tx_id = "w";
  add_private_write(write_tx.rwset, "col", "k", to_bytes("v1"));

  TxProposal stale_read;
  stale_read.channel_id = "ch";
  stale_read.chaincode_id = "cc";
  stale_read.tx_id = "r";
  add_private_read(stale_read.rwset, "col", "k", std::nullopt);  // stale
  add_private_write(stale_read.rwset, "col", "k", to_bytes("v2"));

  orderer.submit(build_envelope(write_tx, client, {&peer1}));
  const auto block =
      orderer.submit(build_envelope(stale_read, client, {&peer1}));
  StateDb db;
  Ledger ledger;
  SoftwareValidator validator(msp, policies);
  const auto result = validator.validate_and_commit(*block, db, ledger);
  EXPECT_EQ(result.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(result.flags[1], TxValidationCode::kMvccReadConflict);
}

}  // namespace
}  // namespace bm::fabric

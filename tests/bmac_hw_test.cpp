#include <gtest/gtest.h>

#include "bmac/block_processor.hpp"
#include "bmac/peer.hpp"
#include "workload/synthetic.hpp"

namespace bm::bmac {
namespace {

using fabric::TxValidationCode;
using fabric::Version;

// --- HwKvStore ---------------------------------------------------------------

TEST(HwKvStore, BasicReadWrite) {
  HwKvStore db(8);
  EXPECT_FALSE(db.read("k").has_value());
  EXPECT_TRUE(db.write("k", to_bytes("v1"), Version{1, 0}));
  const auto v = db.read("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "v1");
  EXPECT_EQ(v->version, (Version{1, 0}));
}

TEST(HwKvStore, CapacityOverflow) {
  HwKvStore db(4);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(db.write("k" + std::to_string(i), to_bytes("v"), Version{}));
  EXPECT_FALSE(db.write("k4", to_bytes("v"), Version{}));
  EXPECT_EQ(db.overflows(), 1u);
  // Overwrites of existing keys still succeed at capacity.
  EXPECT_TRUE(db.write("k0", to_bytes("v2"), Version{2, 0}));
  EXPECT_EQ(db.size(), 4u);
}

TEST(HwKvStore, LockingBlocksReads) {
  HwKvStore db(8);
  db.write("k", to_bytes("v"), Version{});
  db.lock("k");
  EXPECT_TRUE(db.is_locked("k"));
  EXPECT_FALSE(db.read("k").has_value());  // read disallowed mid-write
  db.unlock("k");
  EXPECT_TRUE(db.read("k").has_value());
}

TEST(HwKvStore, VersionMatching) {
  HwKvStore db(8);
  db.write("k", to_bytes("v"), Version{3, 7});
  EXPECT_TRUE(db.version_matches("k", Version{3, 7}));
  EXPECT_FALSE(db.version_matches("k", Version{3, 8}));
  EXPECT_FALSE(db.version_matches("k", std::nullopt));
  EXPECT_TRUE(db.version_matches("absent", std::nullopt));
}

// --- BlockProcessor DES ------------------------------------------------------

struct HwHarness {
  explicit HwHarness(HwConfig config = {}) : processor(sim, config, circuits()) {
    processor.start();
  }

  static std::map<std::string, PolicyCircuit> circuits() {
    fabric::Msp msp;
    msp.add_org("Org1");
    msp.add_org("Org2");
    msp.add_org("Org3");
    std::map<std::string, fabric::EndorsementPolicy> policies;
    policies.emplace("smallbank", fabric::parse_policy_or_throw(
                                      "2-outof-2 orgs", msp.org_names()));
    policies.emplace("twoofthree", fabric::parse_policy_or_throw(
                                       "2-outof-3 orgs", msp.org_names()));
    return compile_policies(policies, msp);
  }

  /// Feed one block of synthetic transactions; ends[i] lists
  /// (org, verification result) per endorsement of tx i.
  void feed_block(
      std::uint64_t num,
      const std::vector<std::vector<std::pair<int, bool>>>& ends_per_tx,
      bool block_ok = true, const std::string& chaincode = "smallbank",
      const std::vector<bool>& creator_ok = {}) {
    for (std::size_t i = 0; i < ends_per_tx.size(); ++i) {
      for (const auto& [org, ok] : ends_per_tx[i]) {
        EndsEntry end;
        end.endorser = fabric::EncodedId::make(static_cast<std::uint8_t>(org),
                                               fabric::Role::kPeer, 0);
        end.verify = VerifyRequest::assumed(ok);
        ASSERT_TRUE(processor.ends_fifo().try_put(std::move(end)));
      }
      TxEntry tx;
      tx.block_num = num;
      tx.tx_seq = static_cast<std::uint32_t>(i);
      tx.chaincode_id = chaincode;
      tx.verify = VerifyRequest::assumed(
          creator_ok.empty() ? true : creator_ok[i]);
      tx.endorsement_count = static_cast<std::uint16_t>(ends_per_tx[i].size());
      ASSERT_TRUE(processor.tx_fifo().try_put(std::move(tx)));
    }
    BlockEntry block;
    block.block_num = num;
    block.tx_count = static_cast<std::uint32_t>(ends_per_tx.size());
    block.verify = VerifyRequest::assumed(block_ok);
    ASSERT_TRUE(processor.block_fifo().try_put(std::move(block)));
  }

  ResultEntry run_and_get() {
    ResultEntry out;
    bool got = false;
    // Drain reg_map via polling within the simulation.
    while (!got) {
      if (!sim.step()) break;
      if (auto r = processor.reg_map().try_get()) {
        out = std::move(*r);
        got = true;
      }
    }
    EXPECT_TRUE(got);
    return out;
  }

  sim::Simulation sim;
  BlockProcessor processor;
};

TEST(BlockProcessorTest, AllValidTransactions) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, true}},
                    {{1, true}, {2, true}},
                    {{1, true}, {2, true}}});
  const ResultEntry result = hw.run_and_get();
  EXPECT_TRUE(result.block_valid);
  ASSERT_EQ(result.flags.size(), 3u);
  for (const auto flag : result.flags) EXPECT_EQ(flag, TxValidationCode::kValid);
  EXPECT_EQ(hw.processor.monitor().valid_transactions, 3u);
}

TEST(BlockProcessorTest, InvalidBlockSkipsEverything) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, true}}, {{1, true}, {2, true}}},
                /*block_ok=*/false);
  const ResultEntry result = hw.run_and_get();
  EXPECT_FALSE(result.block_valid);
  for (const auto flag : result.flags)
    EXPECT_EQ(flag, TxValidationCode::kNotValidated);
  // Engine skip mechanism: only the block check ran.
  EXPECT_EQ(result.stats.ecdsa_executed, 1u);
  EXPECT_EQ(result.stats.ecdsa_skipped, 2u * 3u);  // 2 tx * (1 creator + 2 ends)
}

TEST(BlockProcessorTest, BadCreatorSignatureDiscardsEndorsements) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, true}}, {{1, true}, {2, true}}},
                true, "smallbank", {false, true});
  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kBadCreatorSignature);
  EXPECT_EQ(result.flags[1], TxValidationCode::kValid);
  // tx0's endorsements were discarded without engine work.
  EXPECT_EQ(result.stats.ecdsa_skipped, 2u);
}

TEST(BlockProcessorTest, PolicyFailureWhenEndorsementInvalid) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, false}},   // Org2 sig invalid -> fail
                    {{1, true}, {2, true}}});
  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kEndorsementPolicyFailure);
  EXPECT_EQ(result.flags[1], TxValidationCode::kValid);
}

TEST(BlockProcessorTest, UnknownChaincodeInvalid) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, true}}}, true, "nonexistent");
  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kInvalidEndorserTransaction);
}

TEST(BlockProcessorTest, ShortCircuitSkipsUnneededEndorsements) {
  // 2-of-3 policy with 2 engines: the first round (orgs 1,2) satisfies the
  // policy, so the third endorsement must be skipped (Fig. 7e's win).
  HwConfig config;
  config.engines_per_vscc = 2;
  HwHarness hw(config);
  hw.feed_block(0, {{{1, true}, {2, true}, {3, true}}}, true, "twoofthree");
  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(result.stats.ecdsa_skipped, 1u);
  EXPECT_EQ(result.stats.ecdsa_executed, 1u + 1u + 2u);  // block + creator + 2 ends
}

TEST(BlockProcessorTest, ShortCircuitRecoversFromInvalidEndorsement) {
  // 2-of-3, first endorsement invalid: needs a second round and still
  // validates via orgs 2+3.
  HwConfig config;
  config.engines_per_vscc = 2;
  HwHarness hw(config);
  hw.feed_block(0, {{{1, false}, {2, true}, {3, true}}}, true, "twoofthree");
  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(result.stats.ecdsa_skipped, 0u);
}

TEST(BlockProcessorTest, PolicyUnsatisfiableAfterAllEndorsements) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}}});  // 2of2 needs both orgs
  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kEndorsementPolicyFailure);
}

TEST(BlockProcessorTest, MvccThroughHardwareDatabase) {
  HwHarness hw;
  // tx0 writes k (no reads). tx1 reads k expecting absent -> conflict,
  // because tx0 committed first within the same block.
  for (int i = 0; i < 2; ++i) {
    for (const auto org : {1, 2}) {
      EndsEntry end;
      end.endorser = fabric::EncodedId::make(static_cast<std::uint8_t>(org),
                                             fabric::Role::kPeer, 0);
      end.verify = VerifyRequest::assumed(true);
      ASSERT_TRUE(hw.processor.ends_fifo().try_put(std::move(end)));
    }
    TxEntry tx;
    tx.block_num = 0;
    tx.tx_seq = static_cast<std::uint32_t>(i);
    tx.chaincode_id = "smallbank";
    tx.verify = VerifyRequest::assumed(true);
    tx.endorsement_count = 2;
    if (i == 0) {
      tx.write_count = 1;
      ASSERT_TRUE(hw.processor.wrset_fifo().try_put(
          WrsetEntry{"k", to_bytes("v0")}));
    } else {
      tx.read_count = 1;
      tx.write_count = 1;
      ASSERT_TRUE(hw.processor.rdset_fifo().try_put(
          RdsetEntry{"k", std::nullopt}));
      ASSERT_TRUE(hw.processor.wrset_fifo().try_put(
          WrsetEntry{"k", to_bytes("v1")}));
    }
    ASSERT_TRUE(hw.processor.tx_fifo().try_put(std::move(tx)));
  }
  BlockEntry block;
  block.block_num = 0;
  block.tx_count = 2;
  block.verify = VerifyRequest::assumed(true);
  ASSERT_TRUE(hw.processor.block_fifo().try_put(std::move(block)));

  const ResultEntry result = hw.run_and_get();
  EXPECT_EQ(result.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(result.flags[1], TxValidationCode::kMvccReadConflict);
  // tx1's write skipped: value and version still from tx0.
  const auto v = hw.processor.statedb().read("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_string(v->value), "v0");
  EXPECT_EQ(v->version, (Version{0, 0}));
}

TEST(BlockProcessorTest, InOrderCollectionWithHeterogeneousWork) {
  // Transactions with wildly different endorsement counts must still come
  // out in program order (tx_collector, §3.3).
  HwConfig config;
  config.tx_validators = 4;
  config.engines_per_vscc = 1;  // force multiple rounds for 2 ends
  HwHarness hw(config);
  std::vector<std::vector<std::pair<int, bool>>> ends;
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 0)
      ends.push_back({{1, true}, {2, true}});  // slow (2 rounds)
    else
      ends.push_back({{1, true}, {2, true}});
  }
  // Mix in failures to vary vscc completion times further.
  ends[5] = {{1, false}};
  hw.feed_block(0, ends);
  const ResultEntry result = hw.run_and_get();
  ASSERT_EQ(result.flags.size(), 12u);
  EXPECT_EQ(result.flags[5], TxValidationCode::kEndorsementPolicyFailure);
  for (std::size_t i = 0; i < 12; ++i) {
    if (i == 5) continue;
    EXPECT_EQ(result.flags[i], TxValidationCode::kValid) << i;
  }
}

TEST(BlockProcessorTest, RegMapBlocksUntilHostReads) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, true}}});
  hw.feed_block(1, {{{1, true}, {2, true}}});
  hw.feed_block(2, {{{1, true}, {2, true}}});
  hw.sim.run();  // nobody reads reg_map
  // Only one result can sit in reg_map; the rest are queued behind it.
  EXPECT_EQ(hw.processor.reg_map().size(), 1u);
  auto first = hw.processor.reg_map().try_get();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->block_num, 0u);
  hw.sim.run();  // reg_map writer advances
  auto second = hw.processor.reg_map().try_get();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->block_num, 1u);
}

TEST(BlockProcessorTest, MonitorAggregatesAcrossBlocks) {
  HwHarness hw;
  hw.feed_block(0, {{{1, true}, {2, true}}});
  (void)hw.run_and_get();
  hw.feed_block(1, {{{1, true}, {2, true}}, {{1, true}, {2, true}}});
  (void)hw.run_and_get();
  const MonitorStats& m = hw.processor.monitor();
  EXPECT_EQ(m.blocks, 2u);
  EXPECT_EQ(m.transactions, 3u);
  EXPECT_EQ(m.valid_transactions, 3u);
  // 2 block checks + 3 creator + 6 endorsement verifications.
  EXPECT_EQ(m.ecdsa_executed, 2u + 3u + 6u);
  EXPECT_GT(m.total_block_latency, 0);
}

TEST(BlockProcessorTest, TxLatencyAroundPaperValue) {
  // §4.3: transaction validation latency ~0.3 ms (verify + vscc rounds).
  workload::SyntheticSpec spec;
  spec.blocks = 5;
  spec.block_size = 50;
  spec.ends_attached = 2;
  spec.policy_text = "2-outof-2 orgs";
  spec.org_count = 2;
  const auto result = workload::run_hw_workload(spec);
  EXPECT_NEAR(result.tx_latency_us, 290.0, 15.0);
}

}  // namespace
}  // namespace bm::bmac

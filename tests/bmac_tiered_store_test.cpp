// Tests for the §5 extension: in-hardware KV store backed by a persistent
// host database (LRU spill / promote).
#include <gtest/gtest.h>

#include "bmac/hw_kvstore.hpp"
#include "workload/synthetic.hpp"

namespace bm::bmac {
namespace {

using fabric::Version;

TEST(TieredKvStore, EvictsLruToHostInsteadOfOverflowing) {
  fabric::StateDb host;
  HwKvStore db(3);
  db.attach_host_store(&host);

  EXPECT_TRUE(db.write("a", to_bytes("1"), Version{1, 0}));
  EXPECT_TRUE(db.write("b", to_bytes("2"), Version{1, 1}));
  EXPECT_TRUE(db.write("c", to_bytes("3"), Version{1, 2}));
  EXPECT_TRUE(db.write("d", to_bytes("4"), Version{1, 3}));  // evicts "a"

  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.evictions(), 1u);
  EXPECT_EQ(db.overflows(), 0u);
  ASSERT_TRUE(host.get("a").has_value());
  EXPECT_EQ(to_string(host.get("a")->value), "1");
}

TEST(TieredKvStore, LruOrderRespectsAccesses) {
  fabric::StateDb host;
  HwKvStore db(3);
  db.attach_host_store(&host);
  db.write("a", to_bytes("1"), Version{1, 0});
  db.write("b", to_bytes("2"), Version{1, 1});
  db.write("c", to_bytes("3"), Version{1, 2});
  // Touch "a": it becomes most recently used, so "b" is the next victim.
  EXPECT_TRUE(db.read("a").has_value());
  db.write("d", to_bytes("4"), Version{1, 3});
  EXPECT_FALSE(host.get("a").has_value());
  EXPECT_TRUE(host.get("b").has_value());
}

TEST(TieredKvStore, ReadMissFetchesAndPromotes) {
  fabric::StateDb host;
  host.put("cold", to_bytes("v"), Version{5, 0});
  HwKvStore db(4);
  db.attach_host_store(&host);

  const auto value = db.read("cold");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(db.last_tier(), AccessTier::kHost);
  EXPECT_EQ(value->version, (Version{5, 0}));
  EXPECT_EQ(db.host_accesses(), 1u);
  // Promoted: the host copy is gone, the next read is on-chip.
  EXPECT_FALSE(host.get("cold").has_value());
  EXPECT_TRUE(db.read("cold").has_value());
  EXPECT_EQ(db.last_tier(), AccessTier::kHardware);
}

TEST(TieredKvStore, VersionCheckConsultsHostTier) {
  fabric::StateDb host;
  host.put("k", to_bytes("v"), Version{3, 1});
  HwKvStore db(4);
  db.attach_host_store(&host);
  EXPECT_TRUE(db.version_matches("k", Version{3, 1}));
  EXPECT_EQ(db.last_tier(), AccessTier::kHost);
  EXPECT_FALSE(db.version_matches("k", Version{3, 2}));
  EXPECT_TRUE(db.version_matches("missing-everywhere", std::nullopt));
}

TEST(TieredKvStore, UpdateOfHostResidentKeySupersedesHostCopy) {
  fabric::StateDb host;
  host.put("k", to_bytes("old"), Version{1, 0});
  HwKvStore db(4);
  db.attach_host_store(&host);
  EXPECT_TRUE(db.write("k", to_bytes("new"), Version{2, 0}));
  EXPECT_EQ(db.last_tier(), AccessTier::kHost);  // host copy invalidated
  EXPECT_FALSE(host.get("k").has_value());
  EXPECT_EQ(to_string(db.read("k")->value), "new");
}

TEST(TieredKvStore, WithoutHostStoreStillOverflows) {
  HwKvStore db(2);
  EXPECT_TRUE(db.write("a", to_bytes("1"), Version{}));
  EXPECT_TRUE(db.write("b", to_bytes("2"), Version{}));
  EXPECT_FALSE(db.write("c", to_bytes("3"), Version{}));
  EXPECT_EQ(db.overflows(), 1u);
}

TEST(TieredKvStore, WorkingSetLargerThanCapacityStaysCorrect) {
  fabric::StateDb host;
  HwKvStore db(64);
  db.attach_host_store(&host);
  // Write 1000 keys (working set >> capacity), then verify every value via
  // the tiered read path.
  for (int i = 0; i < 1000; ++i)
    ASSERT_TRUE(db.write("k" + std::to_string(i),
                         to_bytes("v" + std::to_string(i)),
                         Version{0, static_cast<std::uint32_t>(i)}));
  EXPECT_EQ(db.size(), 64u);
  EXPECT_EQ(db.evictions(), 1000u - 64u);
  for (int i = 0; i < 1000; ++i) {
    const auto value = db.read("k" + std::to_string(i));
    ASSERT_TRUE(value.has_value()) << i;
    EXPECT_EQ(to_string(value->value), "v" + std::to_string(i));
  }
  // Total entries conserved across tiers.
  EXPECT_EQ(db.size() + host.size(), 1000u);
}

}  // namespace
}  // namespace bm::bmac

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/crc32.hpp"
#include "fabric/block_store.hpp"
#include "fabric/validator.hpp"
#include "workload/network_harness.hpp"

namespace bm::fabric {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct StoreFixture : ::testing::Test {
  StoreFixture() {
    options.block_size = 4;
    options.seed = 31;
  }
  void TearDown() override { std::remove(path.c_str()); }

  /// Produce n committed blocks and persist them.
  void persist(int n) {
    workload::FabricNetworkHarness harness(options);
    SoftwareValidator validator(harness.msp(), harness.policies());
    FileBlockStore store(path);
    for (int i = 0; i < n; ++i) {
      const Block block = harness.next_block();
      validator.validate_and_commit(block, state, ledger);
      store.append(ledger.last());
    }
  }

  workload::NetworkOptions options;
  std::string path = temp_path("bm_block_store_test.log");
  StateDb state;
  Ledger ledger;
};

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
  // Incremental == one-shot.
  const Bytes data = to_bytes("hello block store");
  std::uint32_t crc = crc32(ByteView(data).subspan(0, 5));
  crc = crc32_update(crc, ByteView(data).subspan(5));
  EXPECT_EQ(crc, crc32(data));
}

TEST_F(StoreFixture, PersistAndRecover) {
  persist(5);
  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 5u);
  EXPECT_EQ(chain.torn_bytes, 0u);

  Ledger recovered;
  StateDb recovered_state;
  ASSERT_TRUE(replay_chain(chain, recovered, &recovered_state));
  EXPECT_EQ(recovered.height(), ledger.height());
  EXPECT_EQ(recovered.last().commit_hash, ledger.last().commit_hash);
  EXPECT_EQ(recovered_state.size(), state.size());
}

TEST_F(StoreFixture, RecoverMissingFileIsEmpty) {
  const auto chain = FileBlockStore::recover(temp_path("does_not_exist.log"));
  EXPECT_TRUE(chain.blocks.empty());
}

TEST_F(StoreFixture, TornTailIsDiscarded) {
  persist(3);
  // Simulate a crash mid-append: truncate the file inside the last record.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 17);

  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 2u);
  EXPECT_GT(chain.torn_bytes, 0u);

  Ledger recovered;
  EXPECT_TRUE(replay_chain(chain, recovered));
  EXPECT_EQ(recovered.height(), 2u);
}

TEST_F(StoreFixture, CorruptionDetectedByCrc) {
  persist(3);
  // Flip one byte in the middle of the second record's payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(std::filesystem::file_size(path) / 2),
               SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  const auto chain = FileBlockStore::recover(path);
  EXPECT_LT(chain.blocks.size(), 3u);  // corrupt record and successors dropped
  Ledger recovered;
  EXPECT_TRUE(replay_chain(chain, recovered));  // surviving prefix replays
}

TEST_F(StoreFixture, AppendAfterRecoveryContinuesChain) {
  persist(2);
  // Recover, then keep appending to the same file.
  auto chain = FileBlockStore::recover(path);
  ASSERT_EQ(chain.blocks.size(), 2u);

  workload::NetworkOptions more = options;
  more.seed = 32;
  // Rebuild the pipeline state from disk, then commit new blocks on top.
  Ledger recovered;
  StateDb recovered_state;
  ASSERT_TRUE(replay_chain(chain, recovered, &recovered_state));

  FileBlockStore store(path);
  workload::FabricNetworkHarness harness(options);
  SoftwareValidator validator(harness.msp(), harness.policies());
  // Regenerate the first two blocks (deterministic seed) to resync the
  // harness, then a third block goes through the recovered ledger.
  harness.next_block();
  harness.next_block();
  const Block third = harness.next_block();
  validator.validate_and_commit(third, recovered_state, recovered);
  store.append(recovered.last());

  const auto final_chain = FileBlockStore::recover(path);
  EXPECT_EQ(final_chain.blocks.size(), 3u);
  EXPECT_EQ(final_chain.blocks.back().commit_hash,
            recovered.last().commit_hash);
}

TEST_F(StoreFixture, ReplayRejectsTamperedChain) {
  persist(2);
  auto chain = FileBlockStore::recover(path);
  ASSERT_EQ(chain.blocks.size(), 2u);
  chain.blocks[1].commit_hash[0] ^= 1;
  Ledger recovered;
  EXPECT_FALSE(replay_chain(chain, recovered));
}

}  // namespace
}  // namespace bm::fabric

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/crc32.hpp"
#include "fabric/block_store.hpp"
#include "fabric/validator.hpp"
#include "workload/network_harness.hpp"

namespace bm::fabric {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct StoreFixture : ::testing::Test {
  StoreFixture() {
    options.block_size = 4;
    options.seed = 31;
  }
  void TearDown() override { std::remove(path.c_str()); }

  /// Produce n committed blocks and persist them.
  void persist(int n) {
    workload::FabricNetworkHarness harness(options);
    SoftwareValidator validator(harness.msp(), harness.policies());
    FileBlockStore store(path);
    for (int i = 0; i < n; ++i) {
      const Block block = harness.next_block();
      validator.validate_and_commit(block, state, ledger);
      store.append(ledger.last());
    }
  }

  workload::NetworkOptions options;
  std::string path = temp_path("bm_block_store_test.log");
  StateDb state;
  Ledger ledger;
};

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
  // Incremental == one-shot.
  const Bytes data = to_bytes("hello block store");
  std::uint32_t crc = crc32(ByteView(data).subspan(0, 5));
  crc = crc32_update(crc, ByteView(data).subspan(5));
  EXPECT_EQ(crc, crc32(data));
}

TEST_F(StoreFixture, PersistAndRecover) {
  persist(5);
  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 5u);
  EXPECT_EQ(chain.torn_bytes, 0u);

  Ledger recovered;
  StateDb recovered_state;
  ASSERT_TRUE(replay_chain(chain, recovered, &recovered_state));
  EXPECT_EQ(recovered.height(), ledger.height());
  EXPECT_EQ(recovered.last().commit_hash, ledger.last().commit_hash);
  EXPECT_EQ(recovered_state.size(), state.size());
}

TEST_F(StoreFixture, RecoverMissingFileIsEmpty) {
  const auto chain = FileBlockStore::recover(temp_path("does_not_exist.log"));
  EXPECT_TRUE(chain.blocks.empty());
}

TEST_F(StoreFixture, TornTailIsDiscarded) {
  persist(3);
  // Simulate a crash mid-append: truncate the file inside the last record.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 17);

  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 2u);
  EXPECT_GT(chain.torn_bytes, 0u);

  Ledger recovered;
  EXPECT_TRUE(replay_chain(chain, recovered));
  EXPECT_EQ(recovered.height(), 2u);
}

TEST_F(StoreFixture, CorruptionDetectedByCrc) {
  persist(3);
  // Flip one byte in the middle of the second record's payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(std::filesystem::file_size(path) / 2),
               SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  const auto chain = FileBlockStore::recover(path);
  EXPECT_LT(chain.blocks.size(), 3u);  // corrupt record and successors dropped
  Ledger recovered;
  EXPECT_TRUE(replay_chain(chain, recovered));  // surviving prefix replays
}

TEST_F(StoreFixture, AppendAfterRecoveryContinuesChain) {
  persist(2);
  // Recover, then keep appending to the same file.
  auto chain = FileBlockStore::recover(path);
  ASSERT_EQ(chain.blocks.size(), 2u);

  workload::NetworkOptions more = options;
  more.seed = 32;
  // Rebuild the pipeline state from disk, then commit new blocks on top.
  Ledger recovered;
  StateDb recovered_state;
  ASSERT_TRUE(replay_chain(chain, recovered, &recovered_state));

  FileBlockStore store(path);
  workload::FabricNetworkHarness harness(options);
  SoftwareValidator validator(harness.msp(), harness.policies());
  // Regenerate the first two blocks (deterministic seed) to resync the
  // harness, then a third block goes through the recovered ledger.
  harness.next_block();
  harness.next_block();
  const Block third = harness.next_block();
  validator.validate_and_commit(third, recovered_state, recovered);
  store.append(recovered.last());

  const auto final_chain = FileBlockStore::recover(path);
  EXPECT_EQ(final_chain.blocks.size(), 3u);
  EXPECT_EQ(final_chain.blocks.back().commit_hash,
            recovered.last().commit_hash);
}

TEST_F(StoreFixture, ReplayRejectsTamperedChain) {
  persist(2);
  auto chain = FileBlockStore::recover(path);
  ASSERT_EQ(chain.blocks.size(), 2u);
  chain.blocks[1].commit_hash[0] ^= 1;
  Ledger recovered;
  EXPECT_FALSE(replay_chain(chain, recovered));
}

// --- malformed frames -------------------------------------------------------

constexpr std::uint32_t kTestMagic = 0x424D4C47;  // "BMLG", mirrors the store

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Append one raw frame with caller-chosen header fields (no validation).
void append_raw_frame(const std::string& path, std::uint32_t magic,
                      std::uint32_t len, std::uint32_t crc,
                      const Bytes& payload) {
  Bytes frame;
  put_u32le(frame, magic);
  put_u32le(frame, len);
  put_u32le(frame, crc);
  bm::append(frame, payload);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(frame.data(), 1, frame.size(), f), frame.size());
  std::fclose(f);
}

Bytes read_file(const std::string& path) {
  Bytes bytes(std::filesystem::file_size(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, ByteView bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST_F(StoreFixture, ZeroLengthFrameStopsTheScan) {
  persist(2);
  const auto before = std::filesystem::file_size(path);
  append_raw_frame(path, kTestMagic, 0, crc32(Bytes{}), Bytes{});

  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 2u);
  EXPECT_EQ(chain.torn_bytes, 12u);  // the whole malformed frame

  // Reopen cuts it off the file entirely.
  FileBlockStore store(path);
  EXPECT_EQ(store.height(), 2u);
  EXPECT_EQ(store.truncated_bytes(), 12u);
  EXPECT_EQ(std::filesystem::file_size(path), before);
}

TEST_F(StoreFixture, ShortLengthFrameRejectedEvenWithValidCrc) {
  persist(2);
  // A record shorter than a bare commit hash cannot be well-formed; the
  // length check must fire *before* the payload is viewed or CRC-checked,
  // so a valid CRC does not save it.
  const Bytes payload(16, 0xAB);
  append_raw_frame(path, kTestMagic, 16, crc32(payload), payload);

  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 2u);
  EXPECT_EQ(chain.torn_bytes, 12u + 16u);

  FileBlockStore store(path);
  EXPECT_EQ(store.height(), 2u);
  EXPECT_EQ(store.truncated_bytes(), 12u + 16u);
}

TEST_F(StoreFixture, OversizedLengthFrameStopsTheScan) {
  persist(2);
  append_raw_frame(path, kTestMagic, FileBlockStore::kMaxPayload + 1, 0,
                   Bytes{});
  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 2u);
  EXPECT_EQ(chain.torn_bytes, 12u);
}

TEST_F(StoreFixture, StrayMagicInsidePayloadDoesNotResync) {
  persist(3);
  const auto chain = FileBlockStore::recover(path);
  ASSERT_EQ(chain.blocks.size(), 3u);
  const Bytes pristine = read_file(path);

  // Rebuild the file as: records 0-1, then a CRC-valid frame whose payload
  // *embeds the complete valid frame of record 2* (stray magic and all)
  // behind 32 bytes of junk. The frame passes magic/len/CRC but fails the
  // chain-hash check; a scanner that resynced on the embedded magic would
  // resurrect record 2 out of thin air.
  const std::uint64_t record2_start = chain.record_offsets[2];
  const Bytes record2(pristine.begin() + static_cast<long>(record2_start),
                      pristine.end());
  write_file(path, ByteView(pristine).subspan(0, record2_start));
  Bytes payload(32, 0x00);
  bm::append(payload, record2);
  append_raw_frame(path, kTestMagic, static_cast<std::uint32_t>(payload.size()),
                   crc32(payload), payload);

  const auto rescanned = FileBlockStore::recover(path);
  EXPECT_EQ(rescanned.blocks.size(), 2u);
  EXPECT_EQ(rescanned.torn_bytes, 12u + payload.size());
}

// --- the reopen-after-crash regression --------------------------------------

// The headline bug: a store reopened over a torn tail used to append blindly
// past the tear, burying every new block where recover() (which stops at the
// first inconsistency) could never reach it. Truncate the log at *every*
// byte offset inside the last record, reopen, append — all pre-crash and
// post-reopen blocks must come back.
TEST_F(StoreFixture, ReopenAfterCrashAtEveryOffset) {
  options.block_size = 1;  // small records keep the byte sweep fast
  persist(3);
  const Bytes pristine = read_file(path);
  const auto chain = FileBlockStore::recover(path);
  ASSERT_EQ(chain.blocks.size(), 3u);
  const std::uint64_t last_start = chain.record_offsets[2];

  for (std::uint64_t cut = last_start + 1; cut < pristine.size(); ++cut) {
    write_file(path, ByteView(pristine).subspan(0, cut));

    FileBlockStore store(path);
    ASSERT_EQ(store.height(), 2u) << "cut=" << cut;
    ASSERT_EQ(store.truncated_bytes(), cut - last_start) << "cut=" << cut;
    ASSERT_EQ(store.tail_commit_hash(), ledger.at(1).commit_hash)
        << "cut=" << cut;
    ASSERT_EQ(std::filesystem::file_size(path), last_start) << "cut=" << cut;

    // Re-append the block the crash tore away (same chain position).
    store.append(ledger.at(2));
    ASSERT_EQ(store.blocks_written(), 1u) << "cut=" << cut;

    const auto recovered = FileBlockStore::recover(path);
    ASSERT_EQ(recovered.blocks.size(), 3u) << "cut=" << cut;
    ASSERT_EQ(recovered.blocks.back().commit_hash, ledger.at(2).commit_hash)
        << "cut=" << cut;
    ASSERT_EQ(recovered.torn_bytes, 0u) << "cut=" << cut;
  }
}

TEST_F(StoreFixture, ReopenedStoreRejectsNonExtendingAppend) {
  persist(2);
  FileBlockStore store(path);
  EXPECT_EQ(store.height(), 2u);
  EXPECT_EQ(store.tail_commit_hash(), ledger.at(1).commit_hash);

  // Wrong chain position: block 1 at height 2.
  EXPECT_THROW(store.append(ledger.at(1)), std::invalid_argument);

  // Right number, wrong hash: does not extend the recovered tail.
  CommittedBlock forged = ledger.at(1);
  forged.block.header.number = 2;
  EXPECT_THROW(store.append(forged), std::invalid_argument);

  // Nothing was written by the rejected appends.
  EXPECT_EQ(store.blocks_written(), 0u);
  const auto chain = FileBlockStore::recover(path);
  EXPECT_EQ(chain.blocks.size(), 2u);
}

}  // namespace
}  // namespace bm::fabric

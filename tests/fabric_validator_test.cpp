#include <gtest/gtest.h>

#include "crypto/der.hpp"
#include "fabric/orderer.hpp"
#include "fabric/timing_model.hpp"
#include "fabric/validator.hpp"

namespace bm::fabric {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() {
    org1_ = &msp_.add_org("Org1");
    org2_ = &msp_.add_org("Org2");
    client_ = org1_->issue(Role::kClient, 0, "client0.org1");
    peer1_ = org1_->issue(Role::kPeer, 0, "peer0.org1");
    peer2_ = org2_->issue(Role::kPeer, 0, "peer0.org2");
    orderer_ = std::make_unique<Orderer>(
        org1_->issue(Role::kOrderer, 0, "orderer0.org1"),
        Orderer::Config{.max_tx_per_block = 100});
    policies_.emplace("smallbank",
                      parse_policy_or_throw("Org1 & Org2", msp_.org_names()));
    validator_ = std::make_unique<SoftwareValidator>(msp_, policies_);
  }

  Bytes make_tx(const std::string& id,
                const std::vector<const Identity*>& endorsers,
                ReadWriteSet rwset = {}, const std::string& chaincode = "smallbank") {
    TxProposal proposal;
    proposal.channel_id = "ch";
    proposal.chaincode_id = chaincode;
    proposal.tx_id = id;
    if (rwset.reads.empty() && rwset.writes.empty())
      rwset.writes.push_back({"k_" + id, to_bytes("v")});
    proposal.rwset = std::move(rwset);
    return build_envelope(proposal, client_, endorsers);
  }

  Block cut(std::vector<Bytes> envelopes) {
    for (auto& env : envelopes) orderer_->submit(std::move(env));
    return *orderer_->flush();
  }

  Msp msp_;
  CertificateAuthority* org1_;
  CertificateAuthority* org2_;
  Identity client_, peer1_, peer2_;
  std::unique_ptr<Orderer> orderer_;
  std::map<std::string, EndorsementPolicy> policies_;
  std::unique_ptr<SoftwareValidator> validator_;
  StateDb db_;
  Ledger ledger_;
  HistoryDb history_;
};

TEST_F(ValidatorTest, ValidBlockCommits) {
  const Block block = cut({make_tx("a", {&peer1_, &peer2_}),
                           make_tx("b", {&peer1_, &peer2_})});
  const auto result = validator_->validate_and_commit(block, db_, ledger_, &history_);
  EXPECT_TRUE(result.block_valid);
  EXPECT_EQ(result.valid_tx_count, 2u);
  for (const auto flag : result.flags)
    EXPECT_EQ(flag, TxValidationCode::kValid);
  EXPECT_EQ(db_.size(), 2u);
  EXPECT_EQ(ledger_.height(), 1u);
  ASSERT_NE(history_.history(StateDb::namespaced("smallbank", "k_a")), nullptr);
}

TEST_F(ValidatorTest, TamperedOrdererSignatureRejectsBlock) {
  Block block = cut({make_tx("a", {&peer1_, &peer2_})});
  block.metadata.orderer_sig.back() ^= 1;
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_FALSE(result.block_valid);
  EXPECT_EQ(result.flags[0], TxValidationCode::kNotValidated);
  EXPECT_EQ(ledger_.height(), 0u);
  EXPECT_EQ(db_.size(), 0u);
}

TEST_F(ValidatorTest, TamperedDataHashRejectsBlock) {
  Block block = cut({make_tx("a", {&peer1_, &peer2_})});
  block.envelopes[0][5] ^= 1;  // data no longer matches data_hash
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_FALSE(result.block_valid);
}

TEST_F(ValidatorTest, NonOrdererSignerRejected) {
  Block block = cut({make_tx("a", {&peer1_, &peer2_})});
  // Re-sign with a peer identity: valid signature, wrong role.
  block.metadata.orderer_cert = peer1_.cert.marshal();
  block.metadata.orderer_sig =
      crypto::der_encode_signature(peer1_.sign(block.signing_digest()));
  EXPECT_FALSE(validator_->validate_and_commit(block, db_, ledger_).block_valid);
}

TEST_F(ValidatorTest, BadCreatorSignature) {
  Bytes envelope = make_tx("a", {&peer1_, &peer2_});
  // The creator signature is the last field of the envelope.
  envelope[envelope.size() - 1] ^= 1;
  const Block block = cut({std::move(envelope), make_tx("b", {&peer1_, &peer2_})});
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_TRUE(result.block_valid);
  EXPECT_EQ(result.flags[0], TxValidationCode::kBadCreatorSignature);
  EXPECT_EQ(result.flags[1], TxValidationCode::kValid);
}

TEST_F(ValidatorTest, RogueClientKeyRejected) {
  Identity rogue = org1_->issue(Role::kClient, 1, "client1.org1");
  rogue.key = crypto::key_from_seed(to_bytes("not the cert key"));
  TxProposal proposal;
  proposal.channel_id = "ch";
  proposal.chaincode_id = "smallbank";
  proposal.tx_id = "rogue";
  proposal.rwset.writes.push_back({"k", to_bytes("v")});
  const Block block =
      cut({build_envelope(proposal, rogue, {&peer1_, &peer2_})});
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kBadCreatorSignature);
}

TEST_F(ValidatorTest, EndorsementPolicyFailure) {
  const Block block = cut({make_tx("only-org1", {&peer1_}),
                           make_tx("ok", {&peer1_, &peer2_}),
                           make_tx("none", {})});
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kEndorsementPolicyFailure);
  EXPECT_EQ(result.flags[1], TxValidationCode::kValid);
  EXPECT_EQ(result.flags[2], TxValidationCode::kEndorsementPolicyFailure);
}

TEST_F(ValidatorTest, WrongRoleEndorsementFailsPolicy) {
  // An endorsement from a client identity does not satisfy a peer principal.
  Identity client2 = org2_->issue(Role::kClient, 0, "client0.org2");
  const Block block = cut({make_tx("a", {&peer1_, &client2})});
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kEndorsementPolicyFailure);
}

TEST_F(ValidatorTest, UnknownChaincodeIsInvalid) {
  const Block block =
      cut({make_tx("a", {&peer1_, &peer2_}, {}, "unregistered_cc")});
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kInvalidEndorserTransaction);
}

TEST_F(ValidatorTest, MvccStaleReadConflict) {
  // Block 0 writes k; block 1 reads it with a stale (absent) version.
  const Block b0 = cut({make_tx("w", {&peer1_, &peer2_})});
  validator_->validate_and_commit(b0, db_, ledger_);

  ReadWriteSet stale;
  stale.reads.push_back({"k_w", std::nullopt});  // expected absent, now exists
  stale.writes.push_back({"k_w", to_bytes("v2")});
  const Block b1 = cut({make_tx("r", {&peer1_, &peer2_}, stale)});
  const auto result = validator_->validate_and_commit(b1, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kMvccReadConflict);
  // Conflicting write not applied.
  EXPECT_EQ(to_string(db_.get(StateDb::namespaced("smallbank", "k_w"))->value),
            "v");
}

TEST_F(ValidatorTest, MvccIntraBlockConflict) {
  // Two transactions in one block read-then-write the same key: the first
  // wins, the second conflicts.
  ReadWriteSet rw;
  rw.reads.push_back({"shared", std::nullopt});
  rw.writes.push_back({"shared", to_bytes("x")});
  const Block block = cut({make_tx("t1", {&peer1_, &peer2_}, rw),
                           make_tx("t2", {&peer1_, &peer2_}, rw)});
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(result.flags[1], TxValidationCode::kMvccReadConflict);
}

TEST_F(ValidatorTest, MvccCorrectVersionRead) {
  const Block b0 = cut({make_tx("w", {&peer1_, &peer2_})});
  validator_->validate_and_commit(b0, db_, ledger_);

  ReadWriteSet fresh;
  fresh.reads.push_back({"k_w", Version{0, 0}});  // written by block 0, tx 0
  fresh.writes.push_back({"k_w", to_bytes("v2")});
  const Block b1 = cut({make_tx("r", {&peer1_, &peer2_}, fresh)});
  const auto result = validator_->validate_and_commit(b1, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kValid);
  EXPECT_EQ(db_.get(StateDb::namespaced("smallbank", "k_w"))->version,
            (Version{1, 0}));
}

TEST_F(ValidatorTest, GarbageEnvelopeIsBadPayload) {
  std::vector<Bytes> envs;
  envs.push_back(to_bytes("complete garbage, not an envelope"));
  envs.push_back(make_tx("ok", {&peer1_, &peer2_}));
  const Block block = cut(std::move(envs));
  const auto result = validator_->validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(result.flags[0], TxValidationCode::kBadPayload);
  EXPECT_EQ(result.flags[1], TxValidationCode::kValid);
}

TEST_F(ValidatorTest, VerifiesAllEndorsementsRegardlessOfPolicy) {
  // Fabric quirk (§4.3): with a 1-of-2 policy and 2 endorsements attached,
  // the software validator still verifies both signatures.
  std::map<std::string, EndorsementPolicy> policies;
  policies.emplace("smallbank",
                   parse_policy_or_throw("1-outof-2 orgs", msp_.org_names()));
  SoftwareValidator validator(msp_, policies);
  const Block block = cut({make_tx("a", {&peer1_, &peer2_})});
  validator.validate_and_commit(block, db_, ledger_);
  EXPECT_EQ(validator.stats().endorsement_signature_checks, 2u);
}

TEST_F(ValidatorTest, StatsAreCounted) {
  const Block block = cut({make_tx("a", {&peer1_, &peer2_}),
                           make_tx("b", {&peer1_, &peer2_})});
  validator_->validate_and_commit(block, db_, ledger_);
  const auto& stats = validator_->stats();
  EXPECT_EQ(stats.blocks_processed, 1u);
  EXPECT_EQ(stats.block_signature_checks, 1u);
  EXPECT_EQ(stats.creator_signature_checks, 2u);
  EXPECT_EQ(stats.endorsement_signature_checks, 4u);
  EXPECT_EQ(stats.envelopes_parsed, 2u);
  EXPECT_EQ(stats.db_writes, 2u);
  validator_->reset_stats();
  EXPECT_EQ(validator_->stats().blocks_processed, 0u);
}

TEST_F(ValidatorTest, ParallelVsccMatchesSequential) {
  // Same block, one sequential and one 4-thread validator over fresh state:
  // every observable output must be byte-identical (the parallel path only
  // changes wall-clock time, never results — the DES timing model consumes
  // the stats, so this also pins simulated timing).
  std::vector<Bytes> envs;
  for (int i = 0; i < 8; ++i)
    envs.push_back(make_tx("ok" + std::to_string(i), {&peer1_, &peer2_}));
  envs.push_back(make_tx("short", {&peer1_}));           // policy failure
  envs.push_back(make_tx("none", {}));                   // policy failure
  envs.push_back(make_tx("cc", {&peer1_, &peer2_}, {}, "nope"));  // unknown cc
  envs.push_back(to_bytes("garbage envelope"));          // bad payload
  Bytes bad_sig = make_tx("sig", {&peer1_, &peer2_});
  bad_sig.back() ^= 1;                                   // bad creator sig
  envs.push_back(std::move(bad_sig));
  ReadWriteSet rw;
  rw.reads.push_back({"shared", std::nullopt});
  rw.writes.push_back({"shared", to_bytes("x")});
  envs.push_back(make_tx("m1", {&peer1_, &peer2_}, rw));  // valid
  envs.push_back(make_tx("m2", {&peer1_, &peer2_}, rw));  // mvcc conflict
  const Block block = cut(std::move(envs));

  SoftwareValidator seq(msp_, policies_, 1);
  SoftwareValidator par(msp_, policies_, 4);
  ASSERT_EQ(par.parallelism(), 4u);
  StateDb db_seq, db_par;
  Ledger ledger_seq, ledger_par;
  const auto r_seq = seq.validate_and_commit(block, db_seq, ledger_seq);
  const auto r_par = par.validate_and_commit(block, db_par, ledger_par);

  EXPECT_EQ(r_par.block_valid, r_seq.block_valid);
  ASSERT_EQ(r_par.flags, r_seq.flags);
  EXPECT_EQ(r_par.valid_tx_count, r_seq.valid_tx_count);
  EXPECT_EQ(r_par.commit_hash, r_seq.commit_hash);
  EXPECT_EQ(db_par.size(), db_seq.size());
  EXPECT_EQ(ledger_par.height(), ledger_seq.height());
  EXPECT_EQ(par.stats().creator_signature_checks,
            seq.stats().creator_signature_checks);
  EXPECT_EQ(par.stats().endorsement_signature_checks,
            seq.stats().endorsement_signature_checks);
  EXPECT_EQ(par.stats().envelopes_parsed, seq.stats().envelopes_parsed);
  EXPECT_EQ(par.stats().db_reads, seq.stats().db_reads);
  EXPECT_EQ(par.stats().db_writes, seq.stats().db_writes);
}

TEST_F(ValidatorTest, ParallelVsccAcrossBlocksAndReconfiguration) {
  // Multi-block run with the pool reconfigured mid-stream: ledger hash chain
  // must match a sequential validator commit-for-commit.
  SoftwareValidator seq(msp_, policies_, 1);
  SoftwareValidator par(msp_, policies_, 3);
  StateDb db_seq, db_par;
  Ledger ledger_seq, ledger_par;
  for (int b = 0; b < 4; ++b) {
    if (b == 2) par.set_parallelism(8);
    std::vector<Bytes> envs;
    for (int i = 0; i < 6; ++i) {
      ReadWriteSet rw;
      const std::string key = "k" + std::to_string(i % 3);
      rw.reads.push_back(
          {key, b == 0 ? std::optional<Version>{} : std::optional<Version>{}});
      rw.writes.push_back({key, to_bytes("b" + std::to_string(b))});
      envs.push_back(make_tx("t" + std::to_string(b) + "_" + std::to_string(i),
                             {&peer1_, &peer2_}, rw));
    }
    const Block block = cut(std::move(envs));
    const auto r_seq = seq.validate_and_commit(block, db_seq, ledger_seq);
    const auto r_par = par.validate_and_commit(block, db_par, ledger_par);
    ASSERT_EQ(r_par.flags, r_seq.flags) << "block " << b;
    ASSERT_EQ(r_par.commit_hash, r_seq.commit_hash) << "block " << b;
  }
  EXPECT_EQ(ledger_par.height(), ledger_seq.height());
}

TEST(SwTimingModel, MatchesPaperAnchors) {
  // The calibrated model must land on the paper's reported software numbers
  // (Fig. 7b: 3,500 / 5,300 tps at 4 / 16 vCPUs; §4.3 vscc latencies).
  const SwTimingModel model;
  const SwBlockWorkload at4{150, 2, 2, 2, 2, 4};
  const SwBlockWorkload at16{150, 2, 2, 2, 2, 16};
  EXPECT_NEAR(model.throughput_tps(at4), 3500, 150);
  EXPECT_NEAR(model.throughput_tps(at16), 5300, 200);

  // Endorser at least 35% slower than the validator (Fig. 7a).
  const double endorser =
      150.0 / (static_cast<double>(model.endorser_block_latency(at4)) / 1e9);
  EXPECT_GE(model.throughput_tps(at4) / endorser, 1.35);

  // Throughput grows with block size (Fig. 7a amortization).
  SwBlockWorkload small = at4;
  small.n_tx = 50;
  SwBlockWorkload large = at4;
  large.n_tx = 250;
  EXPECT_LT(model.throughput_tps(small), model.throughput_tps(large));
}

}  // namespace
}  // namespace bm::fabric

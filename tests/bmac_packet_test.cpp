#include <gtest/gtest.h>

#include "bmac/packet.hpp"
#include "common/rng.hpp"

namespace bm::bmac {
namespace {

BmacPacket sample_packet() {
  BmacPacket pkt;
  pkt.header.block_num = 0x1122334455667788ull;
  pkt.header.section = SectionType::kTransaction;
  pkt.header.section_index = 7;
  pkt.header.total_sections = 52;

  Annotation pointer;
  pointer.kind = Annotation::Kind::kPointer;
  pointer.field = FieldId::kRwset;
  pointer.index = 0;
  pointer.offset = 1234;
  pointer.length = 567;
  pkt.annotations.push_back(pointer);

  Annotation locator;
  locator.kind = Annotation::Kind::kLocator;
  locator.index = 255;
  locator.offset = 42;
  locator.length = 861;
  locator.id = fabric::EncodedId::make(2, fabric::Role::kPeer, 3);
  pkt.annotations.push_back(locator);

  pkt.payload = bm::Rng(1).bytes(300);
  pkt.header.annotation_count = 2;
  pkt.header.payload_size = 300;
  return pkt;
}

TEST(BmacPacket, EncodeDecodeRoundTrip) {
  const BmacPacket pkt = sample_packet();
  const Bytes wire = pkt.encode();
  EXPECT_EQ(wire.size(), pkt.wire_size());

  const auto decoded = BmacPacket::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.block_num, pkt.header.block_num);
  EXPECT_EQ(decoded->header.section, pkt.header.section);
  EXPECT_EQ(decoded->header.section_index, pkt.header.section_index);
  EXPECT_EQ(decoded->header.total_sections, pkt.header.total_sections);
  ASSERT_EQ(decoded->annotations.size(), 2u);
  EXPECT_EQ(decoded->annotations[0].kind, Annotation::Kind::kPointer);
  EXPECT_EQ(decoded->annotations[0].field, FieldId::kRwset);
  EXPECT_EQ(decoded->annotations[0].offset, 1234u);
  EXPECT_EQ(decoded->annotations[0].length, 567u);
  EXPECT_EQ(decoded->annotations[1].kind, Annotation::Kind::kLocator);
  EXPECT_EQ(decoded->annotations[1].index, 255);
  EXPECT_EQ(decoded->annotations[1].id.org(), 2);
  EXPECT_EQ(decoded->annotations[1].id.seq(), 3);
  EXPECT_TRUE(equal(decoded->payload, pkt.payload));
}

TEST(BmacPacket, EmptyPayloadAndAnnotations) {
  BmacPacket pkt;
  pkt.header.block_num = 9;
  pkt.header.section = SectionType::kHeader;
  const auto decoded = BmacPacket::decode(pkt.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->annotations.empty());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(BmacPacket, DecodeRejectsMalformed) {
  const Bytes wire = sample_packet().encode();

  EXPECT_FALSE(BmacPacket::decode(Bytes{}).has_value());
  EXPECT_FALSE(BmacPacket::decode(Bytes(5, 0)).has_value());

  Bytes truncated(wire.begin(), wire.end() - 10);
  EXPECT_FALSE(BmacPacket::decode(truncated).has_value());

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(BmacPacket::decode(trailing).has_value());

  Bytes bad_section = wire;
  bad_section[8] = 99;  // invalid SectionType
  EXPECT_FALSE(BmacPacket::decode(bad_section).has_value());

  // Annotation count inconsistent with the buffer length.
  Bytes bad_count = wire;
  bad_count[13] = 0x7f;
  EXPECT_FALSE(BmacPacket::decode(bad_count).has_value());
}

TEST(BmacPacket, WireSizeAccounting) {
  const BmacPacket pkt = sample_packet();
  EXPECT_EQ(pkt.wire_size(),
            kPacketHeaderSize + 2 * kAnnotationSize + pkt.payload.size());
}

TEST(BmacPacket, FuzzDecodeNeverCrashes) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(200));
    (void)BmacPacket::decode(junk);  // must not crash or overflow
  }
  // Mutated valid packets.
  const Bytes wire = sample_packet().encode();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    (void)BmacPacket::decode(mutated);
  }
  SUCCEED();
}

}  // namespace
}  // namespace bm::bmac

// The paper's §4.1 consistency check, as a test: for every experiment the
// authors compared block validity, per-transaction flags and the commit hash
// between the software-only peer and the BMac peer and found no mismatches.
// Here the same blocks — including fault-injected ones — flow through both
// implementations end to end (real signatures, real packets, real hardware
// pipeline model) and must produce identical results.
#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "fabric/validator.hpp"
#include "workload/network_harness.hpp"

namespace bm::bmac {
namespace {

using workload::ChaincodeKind;
using workload::FabricNetworkHarness;
using workload::NetworkOptions;

struct EquivalenceResult {
  std::vector<fabric::BlockValidationResult> sw_results;
  std::vector<ResultEntry> hw_results;
  crypto::Digest sw_commit_hash{};
  crypto::Digest hw_commit_hash{};
  std::uint64_t sw_db_size = 0;
  std::uint64_t hw_db_size = 0;
  std::uint64_t hw_ecdsa_executed = 0;
  std::uint64_t hw_ecdsa_skipped = 0;
  std::uint64_t sw_ecdsa_executed = 0;
};

EquivalenceResult run_equivalence(NetworkOptions options, int blocks,
                                  HwConfig hw_config = {},
                                  bool tamper_last_block = false) {
  FabricNetworkHarness harness(std::move(options));

  // Software-only validator peer.
  fabric::StateDb sw_db;
  fabric::Ledger sw_ledger;
  fabric::SoftwareValidator sw_validator(harness.msp(), harness.policies());

  // BMac peer: protocol sender (orderer side) + full hardware path.
  sim::Simulation sim;
  BmacPeer peer(sim, harness.msp(), hw_config, harness.policies());
  peer.start();
  ProtocolSender sender(harness.msp());

  EquivalenceResult out;
  for (int i = 0; i < blocks; ++i) {
    const bool tampered = tamper_last_block && i == blocks - 1;
    fabric::Block block =
        tampered ? harness.next_tampered_block() : harness.next_block();

    out.sw_results.push_back(
        sw_validator.validate_and_commit(block, sw_db, sw_ledger));

    SendResult send = sender.send(block);
    for (auto& pkt : send.packets) {
      auto decoded = BmacPacket::decode(pkt.encode());
      EXPECT_TRUE(decoded.has_value());
      peer.deliver_packet(std::move(*decoded));
    }
    peer.deliver_block(std::move(block));
    sim.run();
  }

  out.hw_results = peer.results();
  if (sw_ledger.height() > 0)
    out.sw_commit_hash = sw_ledger.last().commit_hash;
  if (peer.ledger().height() > 0)
    out.hw_commit_hash = peer.ledger().last().commit_hash;
  out.sw_db_size = sw_db.size();
  out.hw_db_size = peer.processor().statedb().size();
  out.hw_ecdsa_executed = peer.processor().monitor().ecdsa_executed;
  out.hw_ecdsa_skipped = peer.processor().monitor().ecdsa_skipped;
  out.sw_ecdsa_executed = sw_validator.stats().total_ecdsa_checks();
  return out;
}

void expect_flags_match(const EquivalenceResult& r) {
  ASSERT_EQ(r.sw_results.size(), r.hw_results.size());
  for (std::size_t b = 0; b < r.sw_results.size(); ++b) {
    EXPECT_EQ(r.sw_results[b].block_valid, r.hw_results[b].block_valid)
        << "block " << b;
    ASSERT_EQ(r.sw_results[b].flags.size(), r.hw_results[b].flags.size());
    for (std::size_t t = 0; t < r.sw_results[b].flags.size(); ++t) {
      EXPECT_EQ(r.sw_results[b].flags[t], r.hw_results[b].flags[t])
          << "block " << b << " tx " << t;
    }
  }
  EXPECT_EQ(r.sw_commit_hash, r.hw_commit_hash);
  EXPECT_EQ(r.sw_db_size, r.hw_db_size);
}

TEST(Equivalence, CleanSmallbankWorkload) {
  NetworkOptions options;
  options.block_size = 8;
  options.seed = 100;
  const auto result = run_equivalence(options, 5);
  expect_flags_match(result);
  // All-clean workload: every tx valid in both.
  for (const auto& block : result.sw_results)
    EXPECT_EQ(block.valid_tx_count, 8u);
}

TEST(Equivalence, SmallbankWithInjectedFaults) {
  NetworkOptions options;
  options.block_size = 10;
  options.seed = 200;
  options.bad_signature_rate = 0.15;
  options.missing_endorsement_rate = 0.2;
  options.conflicting_read_rate = 0.2;
  const auto result = run_equivalence(options, 6);
  expect_flags_match(result);

  // The fault injection actually produced each failure class.
  std::map<fabric::TxValidationCode, int> histogram;
  for (const auto& block : result.sw_results)
    for (const auto flag : block.flags) histogram[flag]++;
  EXPECT_GT(histogram[fabric::TxValidationCode::kValid], 0);
  EXPECT_GT(histogram[fabric::TxValidationCode::kBadCreatorSignature], 0);
  EXPECT_GT(histogram[fabric::TxValidationCode::kEndorsementPolicyFailure], 0);
  EXPECT_GT(histogram[fabric::TxValidationCode::kMvccReadConflict], 0);
}

TEST(Equivalence, DrmWorkload) {
  NetworkOptions options;
  options.chaincode = ChaincodeKind::kDrm;
  options.block_size = 8;
  options.seed = 300;
  options.conflicting_read_rate = 0.15;
  const auto result = run_equivalence(options, 4);
  expect_flags_match(result);
}

TEST(Equivalence, TwoOfThreePolicyShortCircuits) {
  NetworkOptions options;
  options.orgs = 3;
  options.policy_text = "2-outof-3 orgs";
  options.block_size = 6;
  options.seed = 400;
  HwConfig hw;
  hw.engines_per_vscc = 2;
  const auto result = run_equivalence(options, 4, hw);
  expect_flags_match(result);

  // Hardware short-circuit: 3 endorsements attached, only 2 verified;
  // software verifies all 3 (the Fig. 7e contrast).
  EXPECT_GT(result.hw_ecdsa_skipped, 0u);
  EXPECT_LT(result.hw_ecdsa_executed, result.sw_ecdsa_executed);
}

TEST(Equivalence, ComplexPolicyFromPaper) {
  NetworkOptions options;
  options.orgs = 4;
  options.policy_text =
      "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | "
      "(Org3 & Org4)";
  options.block_size = 5;
  options.seed = 500;
  options.missing_endorsement_rate = 0.25;
  const auto result = run_equivalence(options, 4);
  expect_flags_match(result);
}

TEST(Equivalence, TamperedBlockRejectedByBoth) {
  NetworkOptions options;
  options.block_size = 5;
  options.seed = 600;
  const auto result = run_equivalence(options, 3, HwConfig{},
                                      /*tamper_last_block=*/true);
  ASSERT_EQ(result.hw_results.size(), 3u);
  EXPECT_TRUE(result.hw_results[1].block_valid);
  EXPECT_FALSE(result.hw_results[2].block_valid);
  EXPECT_FALSE(result.sw_results[2].block_valid);
  for (std::size_t t = 0; t < result.sw_results[2].flags.size(); ++t)
    EXPECT_EQ(result.hw_results[2].flags[t],
              fabric::TxValidationCode::kNotValidated);
  // Neither peer committed the tampered block; hashes agree on the prefix.
  EXPECT_EQ(result.sw_commit_hash, result.hw_commit_hash);
}

TEST(Equivalence, DifferentHardwareConfigsSameVerdicts) {
  // Throughput knobs (V, E) must never change validation outcomes.
  NetworkOptions options;
  options.orgs = 3;
  options.policy_text = "2-outof-3 orgs";
  options.block_size = 7;
  options.seed = 700;
  options.missing_endorsement_rate = 0.2;

  std::vector<std::vector<fabric::TxValidationCode>> flag_sets;
  for (const auto [v, e] : {std::pair{1, 1}, {4, 2}, {5, 3}, {16, 2}}) {
    HwConfig hw;
    hw.tx_validators = v;
    hw.engines_per_vscc = e;
    NetworkOptions opts = options;  // fresh harness, same seed
    const auto result = run_equivalence(opts, 3, hw);
    expect_flags_match(result);
    std::vector<fabric::TxValidationCode> all;
    for (const auto& block : result.hw_results)
      all.insert(all.end(), block.flags.begin(), block.flags.end());
    flag_sets.push_back(std::move(all));
  }
  for (std::size_t i = 1; i < flag_sets.size(); ++i)
    EXPECT_EQ(flag_sets[i], flag_sets[0]);
}

TEST(Equivalence, HardwareStateMatchesSoftwareState) {
  NetworkOptions options;
  options.block_size = 6;
  options.seed = 800;
  options.conflicting_read_rate = 0.1;

  FabricNetworkHarness harness(options);
  fabric::StateDb sw_db;
  fabric::Ledger sw_ledger;
  fabric::SoftwareValidator sw_validator(harness.msp(), harness.policies());

  sim::Simulation sim;
  BmacPeer peer(sim, harness.msp(), HwConfig{}, harness.policies());
  peer.start();
  ProtocolSender sender(harness.msp());

  std::vector<fabric::Block> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(harness.next_block());
  for (const auto& block : blocks) {
    sw_validator.validate_and_commit(block, sw_db, sw_ledger);
    for (auto& pkt : sender.send(block).packets) peer.deliver_packet(pkt);
    peer.deliver_block(block);
  }
  sim.run();

  // Every key committed by software exists in the hardware store with the
  // same value and version.
  EXPECT_EQ(sw_db.size(), peer.processor().statedb().size());
  for (const auto& block : blocks) {
    for (const auto& envelope : block.envelopes) {
      const auto tx = fabric::parse_envelope(envelope);
      ASSERT_TRUE(tx.has_value());
      for (const auto& write : tx->rwset.writes) {
        const std::string key =
            fabric::StateDb::namespaced(tx->chaincode_id, write.key);
        const auto sw_value = sw_db.get(key);
        const auto hw_value = peer.processor().statedb().read(key);
        ASSERT_EQ(sw_value.has_value(), hw_value.has_value()) << key;
        if (sw_value) {
          EXPECT_TRUE(equal(sw_value->value, hw_value->value)) << key;
          EXPECT_EQ(sw_value->version, hw_value->version) << key;
        }
      }
    }
  }
}

}  // namespace
}  // namespace bm::bmac

// The open-loop arrival processes (serve/traffic.hpp) and the JSON
// scenario loader (serve/config.hpp): seed determinism (byte-identical
// schedules), Poisson moment checks, MMPP burst-phase occupancy, the
// diurnal ramp's average rate, and the shipped configs/serve_*.json files.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "serve/config.hpp"
#include "serve/traffic.hpp"

namespace bm::serve {
namespace {

TrafficConfig poisson(double rate_tps, std::uint64_t seed = 7) {
  TrafficConfig config;
  config.process = ArrivalProcess::kPoisson;
  config.rate_tps = rate_tps;
  config.seed = seed;
  return config;
}

TEST(TrafficGenerator, DeterministicScheduleForSeedAndConfig) {
  for (const ArrivalProcess process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kMmpp,
        ArrivalProcess::kDiurnal}) {
    TrafficConfig config = poisson(2000);
    config.process = process;

    TrafficGenerator a(config);
    TrafficGenerator b(config);
    const std::vector<sim::Time> sa = a.schedule(5 * sim::kSecond);
    const std::vector<sim::Time> sb = b.schedule(5 * sim::kSecond);
    ASSERT_GT(sa.size(), 1000u);
    EXPECT_EQ(sa, sb);  // byte-identical arrival sequence

    // A different seed produces a different schedule.
    config.seed = 8;
    TrafficGenerator c(config);
    EXPECT_NE(sa, c.schedule(5 * sim::kSecond));
  }
}

TEST(TrafficGenerator, ArrivalsAreMonotoneAndMatchRepeatedNextArrival) {
  TrafficConfig config = poisson(1000);
  config.process = ArrivalProcess::kMmpp;
  TrafficGenerator gen(config);
  TrafficGenerator step(config);
  const std::vector<sim::Time> arrivals = gen.schedule(2 * sim::kSecond);
  sim::Time prev = 0;
  for (const sim::Time at : arrivals) {
    EXPECT_GE(at, prev);
    prev = at;
    EXPECT_EQ(at, step.next_arrival());
  }
}

TEST(TrafficGenerator, PoissonMeanAndVarianceWithinTolerance) {
  const double rate = 1000.0;
  TrafficGenerator gen(poisson(rate));
  const std::vector<sim::Time> arrivals = gen.schedule(20 * sim::kSecond);
  ASSERT_GT(arrivals.size(), 15000u);

  // Interarrival gaps of a Poisson process are exponential(rate):
  // mean 1/rate seconds, variance 1/rate^2.
  std::vector<double> gaps_s;
  sim::Time prev = 0;
  for (const sim::Time at : arrivals) {
    gaps_s.push_back(static_cast<double>(at - prev) /
                     static_cast<double>(sim::kSecond));
    prev = at;
  }
  double mean = 0;
  for (const double g : gaps_s) mean += g;
  mean /= static_cast<double>(gaps_s.size());
  double var = 0;
  for (const double g : gaps_s) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps_s.size());

  EXPECT_NEAR(mean, 1.0 / rate, 0.03 / rate);
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.10 / (rate * rate));
}

TEST(TrafficGenerator, MmppBurstOccupancyMatchesStationaryChain) {
  TrafficConfig config = poisson(1000, 21);
  config.process = ArrivalProcess::kMmpp;
  config.burst_rate_tps = 4000;
  config.p_enter_burst = 0.05;
  config.p_exit_burst = 0.25;

  TrafficGenerator gen(config);
  while (gen.arrivals() < 30000) gen.next_arrival();

  // Per-arrival phase flips make the phase sequence a two-state chain with
  // stationary burst occupancy p_enter / (p_enter + p_exit) = 1/6.
  const double occupancy = static_cast<double>(gen.burst_arrivals()) /
                           static_cast<double>(gen.arrivals());
  EXPECT_NEAR(occupancy, 0.05 / (0.05 + 0.25), 0.05);
}

TEST(TrafficGenerator, MmppBurstsArriveFasterThanCalm) {
  TrafficConfig config = poisson(500, 3);
  config.process = ArrivalProcess::kMmpp;
  config.burst_rate_tps = 5000;
  TrafficGenerator gen(config);
  const std::vector<sim::Time> arrivals = gen.schedule(20 * sim::kSecond);

  // The mixed rate must sit strictly between the calm and burst rates.
  const double rate = static_cast<double>(arrivals.size()) / 20.0;
  EXPECT_GT(rate, 550.0);
  EXPECT_LT(rate, 4500.0);
}

TEST(TrafficGenerator, DiurnalAverageRateIsMidwayTroughToPeak) {
  TrafficConfig config = poisson(500, 9);
  config.process = ArrivalProcess::kDiurnal;
  config.peak_rate_tps = 1500;
  config.period = sim::kSecond;

  // Over whole periods the raised cosine averages (trough + peak) / 2.
  TrafficGenerator gen(config);
  const std::vector<sim::Time> arrivals = gen.schedule(20 * sim::kSecond);
  const double rate = static_cast<double>(arrivals.size()) / 20.0;
  EXPECT_NEAR(rate, 1000.0, 60.0);

  // And the ramp is visible: the peak half-period sees substantially more
  // arrivals than the trough half-period (theoretical ratio for this
  // raised cosine: (500 + 1000*(0.5 + 1/pi)) / (500 + 1000*(0.5 - 1/pi))
  // ~= 1.93).
  std::uint64_t trough = 0, peak = 0;
  for (const sim::Time at : arrivals) {
    const sim::Time phase = at % sim::kSecond;
    if (phase < sim::kSecond / 4 || phase >= 3 * (sim::kSecond / 4))
      trough += 1;
    else
      peak += 1;
  }
  EXPECT_GT(static_cast<double>(peak), static_cast<double>(trough) * 1.7);
}

TEST(ServeConfig, ParsesEveryKnobAndDerivesSeeds) {
  const char* text = R"({
    "name": "knobs",
    "seed": 99,
    "duration_ms": 750,
    "drain_limit_ms": 4000,
    "validate_vcpus": 4,
    "high_priority_share": 0.3,
    "traffic": { "process": "mmpp", "rate_tps": 1234, "burst_rate_tps": 5000,
                 "p_enter_burst": 0.1, "p_exit_burst": 0.4, "period_ms": 250 },
    "admission": { "queue_capacity": 77, "token_rate_tps": 800,
                   "bucket_capacity": 33, "classes": 3,
                   "pressure_refill_factor": 0.5 },
    "endorse": { "workers": 3, "service_base_us": 200,
                 "per_endorsement_us": 90, "deadline_ms": 10,
                 "sign_threads": 2 },
    "ingress": { "max_batch": 40, "batch_timeout_ms": 2,
                 "high_watermark": 9, "low_watermark": 3 },
    "network": { "orgs": 4, "chaincode": "drm",
                 "policy": "3-outof-4 orgs", "conflicting_read_rate": 0.05 }
  })";
  std::string error;
  const auto options = parse_serve_scenario(text, &error);
  ASSERT_TRUE(options.has_value()) << error;

  EXPECT_EQ(options->name, "knobs");
  EXPECT_EQ(options->duration, 750 * sim::kMillisecond);
  EXPECT_EQ(options->drain_limit, 4000 * sim::kMillisecond);
  EXPECT_EQ(options->validate_vcpus, 4);
  EXPECT_DOUBLE_EQ(options->high_priority_share, 0.3);

  EXPECT_EQ(options->traffic.process, ArrivalProcess::kMmpp);
  EXPECT_DOUBLE_EQ(options->traffic.rate_tps, 1234);
  EXPECT_DOUBLE_EQ(options->traffic.burst_rate_tps, 5000);
  EXPECT_DOUBLE_EQ(options->traffic.p_enter_burst, 0.1);
  EXPECT_DOUBLE_EQ(options->traffic.p_exit_burst, 0.4);
  EXPECT_EQ(options->traffic.period, 250 * sim::kMillisecond);

  EXPECT_EQ(options->admission.queue_capacity, 77u);
  EXPECT_DOUBLE_EQ(options->admission.token_rate_tps, 800);
  EXPECT_DOUBLE_EQ(options->admission.bucket_capacity, 33);
  EXPECT_EQ(options->admission.classes, 3);
  EXPECT_DOUBLE_EQ(options->admission.pressure_refill_factor, 0.5);

  EXPECT_EQ(options->endorse.workers, 3);
  EXPECT_EQ(options->endorse.service_base, 200 * sim::kMicrosecond);
  EXPECT_EQ(options->endorse.per_endorsement, 90 * sim::kMicrosecond);
  EXPECT_EQ(options->endorse.deadline, 10 * sim::kMillisecond);
  EXPECT_EQ(options->endorse.sign_threads, 2u);

  EXPECT_EQ(options->ingress.max_batch, 40u);
  EXPECT_EQ(options->ingress.batch_timeout, 2 * sim::kMillisecond);
  EXPECT_EQ(options->ingress.high_watermark, 9u);
  EXPECT_EQ(options->ingress.low_watermark, 3u);

  EXPECT_EQ(options->network.orgs, 4);
  EXPECT_EQ(options->network.chaincode, workload::ChaincodeKind::kDrm);
  EXPECT_EQ(options->network.policy_text, "3-outof-4 orgs");
  EXPECT_DOUBLE_EQ(options->network.conflicting_read_rate, 0.05);

  // One top-level seed, two decorrelated streams.
  EXPECT_EQ(options->network.seed, 99u);
  EXPECT_EQ(options->traffic.seed, 99u ^ 0x9E3779B97F4A7C15ull);
  EXPECT_NE(options->traffic.seed, options->network.seed);
}

TEST(ServeConfig, MissingKeysKeepDefaults) {
  const auto options = parse_serve_scenario("{}");
  ASSERT_TRUE(options.has_value());
  const ServeOptions defaults;
  EXPECT_EQ(options->duration, defaults.duration);
  EXPECT_EQ(options->admission.queue_capacity,
            defaults.admission.queue_capacity);
  EXPECT_EQ(options->ingress.max_batch, defaults.ingress.max_batch);
  EXPECT_EQ(options->traffic.process, ArrivalProcess::kPoisson);
}

TEST(ServeConfig, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_serve_scenario("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_serve_scenario("[1,2]", &error).has_value());
  EXPECT_FALSE(
      parse_serve_scenario(R"({"traffic": {"process": "warp"}})", &error)
          .has_value());
  EXPECT_FALSE(
      parse_serve_scenario(R"({"traffic": {"rate_tps": "fast"}})", &error)
          .has_value());
  EXPECT_FALSE(
      parse_serve_scenario(R"({"network": {"chaincode": "doom"}})", &error)
          .has_value());
  EXPECT_FALSE(load_serve_scenario("/nonexistent/serve.json", &error)
                   .has_value());
}

TEST(ServeConfig, ShippedScenarioFilesLoad) {
  for (const char* name : {"serve_steady.json", "serve_burst.json"}) {
    std::string error;
    const auto options = load_serve_scenario(
        std::string(BM_REPO_ROOT) + "/configs/" + name, &error);
    ASSERT_TRUE(options.has_value()) << name << ": " << error;
    EXPECT_GT(options->traffic.rate_tps, 0);
    EXPECT_GT(options->admission.queue_capacity, 0u);
    EXPECT_GT(options->ingress.max_batch, 0u);
  }
}

}  // namespace
}  // namespace bm::serve

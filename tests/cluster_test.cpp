// Cluster convergence oracle (ISSUE 10 acceptance): an N-org × M-peer
// deployment with a Raft-ordered block stream and payload gossip must leave
// every peer with a commit-hash chain byte-identical to the single-peer
// reference pipeline — across gossip loss, a forced leader re-election
// mid-stream, and a peer restarted from a snapshot fetched off a healthy
// neighbour.
#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/cluster.hpp"

namespace bm::cluster {
namespace {

std::string temp_dir(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  std::filesystem::create_directories(path);
  return path.string();
}

ClusterConfig small_config() {
  ClusterConfig config;
  config.orgs = 2;
  config.peers_per_org = 2;
  config.orderers = 3;
  config.block_size = 4;
  config.seed = 7;
  config.submit_interval = 2 * sim::kMillisecond;
  return config;
}

/// The byte-level oracle behind ClusterDeployment::converged(): compare the
/// full held chain of every online peer against the reference ledger.
void expect_chains_byte_identical(ClusterDeployment& cluster) {
  const fabric::Ledger& reference = cluster.harness().reference_ledger();
  for (int peer = 0; peer < cluster.peer_count(); ++peer) {
    if (!cluster.peer_online(peer)) continue;
    const fabric::Ledger& ledger = cluster.peer_ledger(peer);
    ASSERT_EQ(ledger.height(), reference.height()) << "peer " << peer;
    EXPECT_EQ(ledger.last_commit_hash(), reference.last_commit_hash())
        << "peer " << peer;
    for (std::uint64_t n = ledger.base_height(); n < ledger.height(); ++n) {
      const fabric::CommittedBlock& mine = ledger.at(n);
      const fabric::CommittedBlock& ref = reference.at(n);
      ASSERT_EQ(mine.commit_hash, ref.commit_hash)
          << "peer " << peer << " block " << n;
      EXPECT_TRUE(equal(mine.block.marshal(), ref.block.marshal()))
          << "peer " << peer << " block " << n;
    }
  }
}

TEST(Cluster, AllPeersConvergeLossless) {
  sim::Simulation sim;
  ClusterDeployment cluster(sim, small_config());
  ASSERT_TRUE(cluster.run_until_blocks(8, 120 * sim::kSecond));
  cluster.settle(2 * sim::kSecond);

  EXPECT_TRUE(cluster.converged()) << cluster.divergence();
  EXPECT_EQ(cluster.blocks_emitted(), 8u);
  EXPECT_EQ(cluster.ordering().forks_detected(), 0u);
  for (int peer = 0; peer < cluster.peer_count(); ++peer)
    EXPECT_EQ(cluster.peer_height(peer), 8u) << "peer " << peer;
  expect_chains_byte_identical(cluster);
  // Every peer validated every block itself — 4 peers × 8 blocks.
  EXPECT_EQ(cluster.blocks_validated(), 32u);
}

TEST(Cluster, ConvergesUnderGossipLoss) {
  ClusterConfig config = small_config();
  config.seed = 13;
  config.gossip.faults = net::FaultConfig::uniform_loss(0.15, /*seed=*/99);
  sim::Simulation sim;
  ClusterDeployment cluster(sim, config);
  ASSERT_TRUE(cluster.run_until_blocks(10, 120 * sim::kSecond));
  cluster.settle(5 * sim::kSecond);  // anti-entropy closes the gaps

  EXPECT_TRUE(cluster.converged()) << cluster.divergence();
  expect_chains_byte_identical(cluster);
}

TEST(Cluster, LeaderReElectionNeverForksOrSkips) {
  ClusterConfig config = small_config();
  config.seed = 19;
  sim::Simulation sim;
  ClusterDeployment cluster(sim, config);
  ASSERT_TRUE(cluster.run_until_blocks(5, 120 * sim::kSecond));

  const int old_leader = cluster.leader();
  ASSERT_GE(old_leader, 0);
  cluster.kill_orderer(old_leader);
  ASSERT_TRUE(cluster.run_until_blocks(12, 600 * sim::kSecond));
  cluster.settle(2 * sim::kSecond);
  EXPECT_NE(cluster.leader(), old_leader);

  // The block stream neither forked nor skipped a number across the
  // re-election: 12 contiguous blocks, one canonical byte version each.
  EXPECT_EQ(cluster.blocks_emitted(), 12u);
  EXPECT_EQ(cluster.ordering().forks_detected(), 0u);
  EXPECT_EQ(cluster.harness().reference_ledger().height(), 12u);
  EXPECT_TRUE(cluster.converged()) << cluster.divergence();
  expect_chains_byte_identical(cluster);
}

TEST(Cluster, RestartedPeerStateTransfersFromHealthyNeighbour) {
  ClusterConfig config = small_config();
  config.seed = 23;
  config.data_dir = temp_dir("bm_cluster_test_transfer");
  config.snapshot_interval = 3;
  config.catch_up_threshold = 4;
  sim::Simulation sim;
  ClusterDeployment cluster(sim, config);
  ASSERT_TRUE(cluster.run_until_blocks(4, 120 * sim::kSecond));
  cluster.settle(sim::kSecond);

  cluster.crash_peer(3);
  ASSERT_TRUE(cluster.run_until_blocks(12, 600 * sim::kSecond));
  EXPECT_FALSE(cluster.peer_online(3));
  EXPECT_EQ(cluster.peer_height(3), 0u);  // cold crash lost everything

  cluster.restart_peer(3);
  cluster.settle(5 * sim::kSecond);

  // It was >= catch_up_threshold behind, so it recovered via snapshot +
  // log-tail replay off a healthy durable neighbour, not block-by-block.
  EXPECT_EQ(cluster.state_transfers(), 1u);
  EXPECT_TRUE(cluster.last_transfer().ok) << cluster.last_transfer().error;
  EXPECT_GT(cluster.catch_up_blocks(), 0u);
  EXPECT_GT(cluster.transfer_bytes(), 0u);
  EXPECT_EQ(cluster.peer_height(3), 12u);

  EXPECT_TRUE(cluster.converged()) << cluster.divergence();
  expect_chains_byte_identical(cluster);
  std::filesystem::remove_all(config.data_dir);
}

TEST(Cluster, FullDrillGossipLossLeaderKillAndPeerRestart) {
  // The acceptance drill, all at once: 2×2 peers with gossip loss, a forced
  // leader re-election mid-run, and one peer restarted from a snapshot —
  // every peer must still end byte-identical to the reference chain.
  ClusterConfig config = small_config();
  config.seed = 31;
  config.gossip.faults = net::FaultConfig::uniform_loss(0.10, /*seed=*/47);
  config.data_dir = temp_dir("bm_cluster_test_drill");
  config.snapshot_interval = 3;
  config.catch_up_threshold = 3;
  sim::Simulation sim;
  ClusterDeployment cluster(sim, config);

  ASSERT_TRUE(cluster.run_until_blocks(5, 120 * sim::kSecond));
  cluster.crash_peer(1);

  const int old_leader = cluster.leader();
  ASSERT_GE(old_leader, 0);
  cluster.kill_orderer(old_leader);
  ASSERT_TRUE(cluster.run_until_blocks(10, 600 * sim::kSecond));

  cluster.restart_peer(1);
  ASSERT_TRUE(cluster.run_until_blocks(14, 600 * sim::kSecond));
  cluster.settle(5 * sim::kSecond);

  EXPECT_EQ(cluster.blocks_emitted(), 14u);
  EXPECT_EQ(cluster.ordering().forks_detected(), 0u);
  EXPECT_EQ(cluster.state_transfers(), 1u);
  EXPECT_TRUE(cluster.converged()) << cluster.divergence();
  for (int peer = 0; peer < cluster.peer_count(); ++peer)
    EXPECT_EQ(cluster.peer_height(peer), 14u) << "peer " << peer;
  expect_chains_byte_identical(cluster);
  std::filesystem::remove_all(config.data_dir);
}

TEST(Cluster, LaggingPeerRepairsViaGossipBelowThreshold) {
  // A small gap (below catch_up_threshold) is not worth a snapshot shot:
  // the restarted peer must converge through gossip anti-entropy alone.
  ClusterConfig config = small_config();
  config.seed = 37;
  config.catch_up_threshold = 100;  // never state-transfer
  sim::Simulation sim;
  ClusterDeployment cluster(sim, config);
  ASSERT_TRUE(cluster.run_until_blocks(3, 120 * sim::kSecond));
  cluster.crash_peer(0);
  ASSERT_TRUE(cluster.run_until_blocks(6, 600 * sim::kSecond));
  cluster.restart_peer(0);
  cluster.settle(10 * sim::kSecond);

  EXPECT_EQ(cluster.state_transfers(), 0u);
  EXPECT_EQ(cluster.peer_height(0), 6u);
  EXPECT_TRUE(cluster.converged()) << cluster.divergence();
  expect_chains_byte_identical(cluster);
}

}  // namespace
}  // namespace bm::cluster

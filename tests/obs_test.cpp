// Tests for the observability layer: metrics registry semantics, tracer
// output well-formedness, FIFO probes, end-to-end snapshot determinism and
// the null-sink zero-overhead guarantee.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "bmac/block_processor.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/trace.hpp"
#include "sim/fifo.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace bm::obs {
namespace {

// --- registry semantics -----------------------------------------------------

TEST(Registry, RegisterOrGetReturnsSameObject) {
  Registry registry;
  Counter& a = registry.counter("requests_total", "help");
  Counter& b = registry.counter("requests_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc();
  EXPECT_EQ(a.value(), 4u);
  EXPECT_EQ(registry.find_counter("requests_total")->value(), 4u);
  EXPECT_EQ(registry.find_counter("never_registered"), nullptr);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry registry;
  Gauge& g = registry.gauge("depth");
  g.set(4.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(registry.find_gauge("depth")->value(), 3.0);
}

TEST(Histogram, BucketsAreCumulativeWithInf) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
}

TEST(Histogram, StddevMatchesDefinition) {
  Histogram h({100.0});
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.stddev(), 2.0, 1e-12);  // classic population-stddev example
}

TEST(Registry, PrometheusTextExposition) {
  Registry registry;
  registry.counter("events_total", "number of events").inc(7);
  registry.gauge("queue_depth").set(3);
  auto& h = registry.histogram("latency_ms", {1.0, 5.0}, "latency");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(40.0);
  const std::string text = registry.render_text(1500);
  EXPECT_NE(text.find("# TYPE events_total counter"), std::string::npos);
  EXPECT_NE(text.find("events_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"5\"} 2"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 3"), std::string::npos);
}

TEST(Registry, JsonSnapshotParsesAndCarriesTime) {
  Registry registry;
  registry.counter("c").inc(2);
  registry.gauge("g").set(0.25);
  registry.histogram("h", {10.0}).observe(4);
  std::string error;
  const auto parsed = json::parse(registry.render_json(42), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->is_object());
  EXPECT_DOUBLE_EQ(parsed->find("at_ns")->number, 42.0);
  EXPECT_DOUBLE_EQ(parsed->find("counters")->find("c")->number, 2.0);
  EXPECT_DOUBLE_EQ(parsed->find("gauges")->find("g")->number, 0.25);
  const json::Value* h = parsed->find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->number, 1.0);
  ASSERT_EQ(h->find("buckets")->array.size(), 2u);  // le=10 and +Inf
}

TEST(FormatNumber, IntegersExactNonIntegersRoundTrip) {
  EXPECT_EQ(detail::format_number(0), "0");
  EXPECT_EQ(detail::format_number(42), "42");
  EXPECT_EQ(detail::format_number(-3), "-3");
  EXPECT_EQ(detail::format_number(1e12), "1000000000000");
  EXPECT_EQ(detail::format_number(0.25), "0.25");
  // Same input always renders the same bytes (determinism requirement).
  EXPECT_EQ(detail::format_number(1.0 / 3.0), detail::format_number(1.0 / 3.0));
}

// --- tracer -----------------------------------------------------------------

TEST(Tracer, LanesProcessesAndCategories) {
  Tracer tracer;
  const int pid = tracer.begin_process("peer");
  const int a = tracer.lane("stage_a");
  const int b = tracer.lane("stage_b");
  EXPECT_NE(a, b);
  tracer.complete(a, "work", "pipeline", 100, 200);
  tracer.instant(b, "tick", "monitor", 150);
  tracer.counter(a, "depth", "fifo", 120, 3);
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.categories(),
            (std::vector<std::string>{"fifo", "monitor", "pipeline"}));
  EXPECT_EQ(tracer.events()[0].process, pid);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  Tracer tracer;
  tracer.begin_process("peer");
  const int lane = tracer.lane("stage");
  tracer.complete(lane, "span", "cat", 1000, 3500, {{"block", std::uint64_t{7}},
                                                    {"note", "a\"b"}});
  tracer.instant(lane, "mark", "cat", 2000);
  std::string error;
  const auto parsed = json::parse(tracer.to_chrome_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const json::Value* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata (process_name, thread_name, thread_sort_index) + 2 events.
  ASSERT_EQ(events->array.size(), 5u);
  const json::Value& span = events->array[3];
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_DOUBLE_EQ(span.find("ts")->number, 1.0);    // 1000 ns = 1 us
  EXPECT_DOUBLE_EQ(span.find("dur")->number, 2.5);   // 2500 ns
  EXPECT_DOUBLE_EQ(span.find("args")->find("block")->number, 7.0);
  EXPECT_EQ(span.find("args")->find("note")->string, "a\"b");
  EXPECT_EQ(events->array[4].find("ph")->string, "i");
}

TEST(Tracer, SubMicrosecondTimestampsSurvive) {
  Tracer tracer;
  const int lane = tracer.lane("l");
  tracer.complete(lane, "tiny", "cat", 200, 400);  // 200 ns
  const std::string out = tracer.to_chrome_json();
  EXPECT_NE(out.find("\"ts\":0.200"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":0.200"), std::string::npos);
}

// --- FIFO probes ------------------------------------------------------------

sim::Process probe_producer(sim::Simulation&, sim::Fifo<int>& fifo, int n) {
  for (int i = 0; i < n; ++i) co_await fifo.put(i);
}

sim::Process probe_consumer(sim::Simulation& sim, sim::Fifo<int>& fifo,
                            int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.delay(100);
    (void)co_await fifo.get();
  }
}

TEST(FifoProbes, DepthAndStallEventsAreRecorded) {
  sim::Simulation sim;
  sim::Fifo<int> fifo(sim, 2, "probe_fifo");
  Tracer tracer;
  attach_fifo_trace(sim, fifo, &tracer, tracer.lane("probe_fifo"));
  sim.spawn(probe_producer(sim, fifo, 6));
  sim.spawn(probe_consumer(sim, fifo, 6));
  sim.run();

  std::size_t depth_samples = 0;
  std::size_t stalls = 0;
  for (const auto& e : tracer.events()) {
    if (e.phase == 'C') ++depth_samples;
    if (e.phase == 'X' && e.name == "probe_fifo stall") {
      ++stalls;
      EXPECT_LT(e.start, e.end);  // a real wait, bounded by the probe
    }
  }
  EXPECT_GT(depth_samples, 0u);
  EXPECT_GT(stalls, 0u);  // capacity 2 vs slow consumer -> back-pressure
  EXPECT_EQ(fifo.total_pushed(), 6u);
  EXPECT_EQ(fifo.total_popped(), 6u);

  Registry registry;
  publish_fifo_metrics(registry, fifo, "t");
  EXPECT_EQ(registry.find_counter("t_probe_fifo_pushed_total")->value(), 6u);
  EXPECT_EQ(registry.find_counter("t_probe_fifo_blocked_puts_total")->value(),
            fifo.blocked_put_events());
  EXPECT_DOUBLE_EQ(registry.find_gauge("t_probe_fifo_capacity")->value(), 2.0);
  // Idempotent: publishing again must not double anything.
  publish_fifo_metrics(registry, fifo, "t");
  EXPECT_EQ(registry.find_counter("t_probe_fifo_pushed_total")->value(), 6u);
}

// --- end-to-end: pipeline instrumentation ----------------------------------

workload::SyntheticSpec tiny_spec() {
  workload::SyntheticSpec spec;
  spec.blocks = 3;
  spec.block_size = 10;
  spec.hw.tx_validators = 2;
  spec.hw.engines_per_vscc = 2;
  return spec;
}

TEST(PipelineObservability, SnapshotsAreByteIdenticalAcrossRuns) {
  std::string metrics[2];
  std::string traces[2];
  for (int run = 0; run < 2; ++run) {
    Registry registry;
    Tracer tracer;
    auto spec = tiny_spec();
    spec.registry = &registry;
    spec.tracer = &tracer;
    const auto result = workload::run_hw_workload(spec);
    metrics[run] = registry.render_json(
        static_cast<sim::Time>(result.sim_seconds * sim::kSecond));
    traces[run] = tracer.to_chrome_json();
  }
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(PipelineObservability, NullSinkExecutesIdenticalEventCount) {
  const auto plain = workload::run_hw_workload(tiny_spec());

  Registry registry;
  Tracer tracer;
  auto spec = tiny_spec();
  spec.registry = &registry;
  spec.tracer = &tracer;
  const auto traced = workload::run_hw_workload(spec);

  // Probes never schedule simulation events: same event count, same
  // simulated timing, to the nanosecond.
  EXPECT_EQ(plain.events_executed, traced.events_executed);
  EXPECT_DOUBLE_EQ(plain.sim_seconds, traced.sim_seconds);
  EXPECT_DOUBLE_EQ(plain.tps, traced.tps);
  EXPECT_GT(tracer.event_count(), 0u);
}

TEST(PipelineObservability, RegistryMatchesMonitorCounters) {
  Registry registry;
  auto spec = tiny_spec();
  spec.registry = &registry;
  const auto result = workload::run_hw_workload(spec);

  EXPECT_EQ(registry.find_counter("bmac_txs_validated_total")->value(),
            result.total_txs);
  EXPECT_EQ(registry.find_counter("bmac_txs_valid_total")->value(),
            result.valid_txs);
  EXPECT_EQ(registry.find_counter("bmac_ecdsa_executed_total")->value(),
            result.ecdsa_executed);
  EXPECT_EQ(registry.find_counter("bmac_ecdsa_skipped_total")->value(),
            result.ecdsa_skipped);
  EXPECT_EQ(registry.find_counter("bmac_blocks_validated_total")->value(), 3u);
  EXPECT_EQ(
      registry.find_histogram("bmac_block_validation_latency_ms")->count(),
      3u);
  EXPECT_EQ(registry.find_histogram("bmac_tx_validation_latency_us")->count(),
            result.total_txs);

  // Engine utilization gauges exist and are sane fractions.
  const Gauge* util = registry.find_gauge("bmac_engine_utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_GT(util->value(), 0.0);
  EXPECT_LE(util->value(), 1.0);
  for (int v = 0; v < 2; ++v) {
    const Gauge* per = registry.find_gauge("bmac_engine_utilization_v" +
                                           std::to_string(v));
    ASSERT_NE(per, nullptr);
    EXPECT_GE(per->value(), 0.0);
    EXPECT_LE(per->value(), 1.0);
  }
}

TEST(PipelineObservability, CompleteSpansNestPerLane) {
  Tracer tracer;
  auto spec = tiny_spec();
  spec.tracer = &tracer;
  (void)workload::run_hw_workload(spec);

  // Chrome 'X' events on one (pid, tid) must not partially overlap, or the
  // viewer renders garbage. Each sequential stage has its own lane, so
  // consecutive spans per lane must be disjoint (or nested).
  std::map<std::pair<int, int>, sim::Time> last_end;
  for (const auto& e : tracer.events()) {
    if (e.phase != 'X') continue;
    const auto key = std::make_pair(e.process, e.lane);
    const auto it = last_end.find(key);
    if (it != last_end.end()) {
      EXPECT_GE(e.start, it->second)
          << "overlapping spans on lane " << e.lane << " (" << e.name << ")";
    }
    last_end[key] = e.end;
  }

  const auto cats = tracer.categories();
  const std::set<std::string> cat_set(cats.begin(), cats.end());
  EXPECT_TRUE(cat_set.count("ecdsa"));
  EXPECT_TRUE(cat_set.count("pipeline"));
  EXPECT_TRUE(cat_set.count("monitor"));
  EXPECT_TRUE(cat_set.count("fifo"));
  EXPECT_TRUE(cat_set.count("host-commit"));
}

}  // namespace
}  // namespace bm::obs

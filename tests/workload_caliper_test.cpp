#include <gtest/gtest.h>

#include "workload/caliper.hpp"

namespace bm::workload {
namespace {

BlockObservation make_obs(std::uint64_t num, sim::Time received,
                          sim::Time validate_ms, std::uint32_t txs,
                          std::uint32_t valid) {
  BlockObservation o;
  o.block_num = num;
  o.tx_count = txs;
  o.valid_tx_count = valid;
  o.received_at = received;
  o.validated_at = received + validate_ms * sim::kMillisecond;
  o.committed_at = o.validated_at + sim::kMillisecond;
  return o;
}

TEST(CaliperReport, AggregatesCounts) {
  CaliperReport report("peer0");
  report.record(make_obs(0, 0, 3, 100, 95));
  report.record(make_obs(1, 10 * sim::kMillisecond, 3, 100, 100));
  EXPECT_EQ(report.blocks(), 2u);
  EXPECT_EQ(report.total_txs(), 200u);
  EXPECT_EQ(report.valid_txs(), 195u);
}

TEST(CaliperReport, OverallThroughput) {
  CaliperReport report("peer0");
  // 300 txs over exactly 100 ms (first receive 0, last commit 100 ms).
  report.record(make_obs(0, 0, 3, 100, 100));
  report.record(make_obs(1, 48 * sim::kMillisecond, 3, 100, 100));
  BlockObservation last = make_obs(2, 96 * sim::kMillisecond, 3, 100, 100);
  last.committed_at = 100 * sim::kMillisecond;
  report.record(last);
  EXPECT_NEAR(report.overall_tps(), 3000.0, 1.0);
}

TEST(CaliperReport, LatencySummary) {
  CaliperReport report("peer0");
  for (int i = 0; i < 10; ++i)
    report.record(make_obs(static_cast<std::uint64_t>(i),
                           i * 10 * sim::kMillisecond,
                           /*validate_ms=*/2 + i, 50, 50));
  const Summary latency = report.validation_latency_ms();
  EXPECT_NEAR(latency.mean, 6.5, 0.01);
  EXPECT_DOUBLE_EQ(latency.min, 2.0);
  EXPECT_DOUBLE_EQ(latency.max, 11.0);
}

TEST(CaliperReport, WindowedSeries) {
  CaliperReport report("peer0");
  // Two blocks commit in window 0, one in window 2.
  report.record(make_obs(0, 0, 1, 100, 100));
  report.record(make_obs(1, 5 * sim::kMillisecond, 1, 100, 100));
  report.record(make_obs(2, 250 * sim::kMillisecond, 1, 100, 100));
  const auto series = report.windowed_tps(100 * sim::kMillisecond);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[0], 2000.0, 0.1);  // 200 txs / 0.1 s
  EXPECT_NEAR(series[1], 0.0, 0.1);
  EXPECT_NEAR(series[2], 1000.0, 0.1);
}

TEST(CaliperReport, RenderContainsHeadline) {
  CaliperReport report("bmac-peer");
  report.record(make_obs(0, 0, 3, 150, 150));
  const std::string text = report.render();
  EXPECT_NE(text.find("bmac-peer"), std::string::npos);
  EXPECT_NE(text.find("commit throughput"), std::string::npos);
  EXPECT_NE(text.find("windowed tps"), std::string::npos);
}

TEST(CaliperReport, EmptyReportIsSafe) {
  CaliperReport report("empty");
  EXPECT_EQ(report.overall_tps(), 0.0);
  EXPECT_TRUE(report.windowed_tps(sim::kSecond).empty());
  EXPECT_FALSE(report.render().empty());
}

}  // namespace
}  // namespace bm::workload

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace bm {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PerIndexResultsMatchSequential) {
  ThreadPool pool(8);
  std::vector<std::uint64_t> parallel(513), sequential(513);
  const auto work = [](std::size_t i) {
    std::uint64_t v = i + 1;
    for (int r = 0; r < 100; ++r) v = v * 6364136223846793005ull + 1442695040888963407ull;
    return v;
  };
  pool.parallel_for(parallel.size(),
                    [&](std::size_t i) { parallel[i] = work(i); });
  for (std::size_t i = 0; i < sequential.size(); ++i) sequential[i] = work(i);
  EXPECT_EQ(parallel, sequential);
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  // Regression guard for the straggler race: a worker from job N must never
  // claim indices of job N+1 with job N's function.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const std::size_t count = 1 + static_cast<std::size_t>(round % 7);
    pool.parallel_for(count, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), count * (count + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  int calls = 0;
  pool.parallel_for(17, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 17);
}

TEST(ThreadPool, ZeroAndOneItemCounts) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });  // runs inline
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DestructionWithoutUse) {
  ThreadPool pool(6);  // workers must shut down cleanly with no job ever run
}

}  // namespace
}  // namespace bm

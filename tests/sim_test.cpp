#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fifo.hpp"
#include "sim/simulation.hpp"

namespace bm::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTimeEventsRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.schedule(5, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  int fired = 0;
  const EventId id = sim.schedule(10, [&] { ++fired; });
  sim.schedule(5, [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.schedule(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  Time inner_time = -1;
  sim.schedule(10, [&] {
    sim.schedule(15, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, 25);
}

Process delayer(Simulation& sim, Time d, int* counter) {
  co_await sim.delay(d);
  ++*counter;
  co_await sim.delay(d);
  ++*counter;
}

TEST(Process, DelayAdvancesClock) {
  Simulation sim;
  int counter = 0;
  sim.spawn(delayer(sim, 100, &counter));
  sim.run();
  EXPECT_EQ(counter, 2);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Process, ManyProcessesAreIndependent) {
  Simulation sim;
  int counter = 0;
  for (int i = 0; i < 50; ++i) sim.spawn(delayer(sim, 10 * (i + 1), &counter));
  sim.run();
  EXPECT_EQ(counter, 100);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Process, UnspawnedProcessIsDestroyedSafely) {
  Simulation sim;
  int counter = 0;
  {
    Process p = delayer(sim, 5, &counter);
    (void)p;  // never spawned; destructor must free the frame
  }
  sim.run();
  EXPECT_EQ(counter, 0);
}

// --- Fifo --------------------------------------------------------------------

Process producer_n(Simulation& sim, Fifo<int>& f, int n, Time gap) {
  for (int i = 0; i < n; ++i) {
    if (gap > 0) co_await sim.delay(gap);
    co_await f.put(i);
  }
}

Process consumer_n(Simulation& sim, Fifo<int>& f, int n, Time gap,
                   std::vector<int>* out) {
  for (int i = 0; i < n; ++i) {
    const int v = co_await f.get();
    if (gap > 0) co_await sim.delay(gap);
    out->push_back(v);
  }
}

TEST(Fifo, PreservesOrderFastProducer) {
  Simulation sim;
  Fifo<int> f(sim, 4, "t");
  std::vector<int> out;
  sim.spawn(producer_n(sim, f, 100, 0));
  sim.spawn(consumer_n(sim, f, 100, 7, &out));
  sim.run();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
  EXPECT_GT(f.blocked_put_events(), 0u);  // back-pressure occurred
  EXPECT_LE(f.max_occupancy(), 4u);
}

TEST(Fifo, PreservesOrderFastConsumer) {
  Simulation sim;
  Fifo<int> f(sim, 4, "t");
  std::vector<int> out;
  sim.spawn(consumer_n(sim, f, 100, 0, &out));
  sim.spawn(producer_n(sim, f, 100, 3));
  sim.run();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
}

TEST(Fifo, ConsumerBottleneckSetsThroughput) {
  // Producer every 10us, consumer takes 25us: completion ~ n * 25us.
  Simulation sim;
  Fifo<int> f(sim, 2, "t");
  std::vector<int> out;
  sim.spawn(producer_n(sim, f, 100, 10 * kMicrosecond));
  sim.spawn(consumer_n(sim, f, 100, 25 * kMicrosecond, &out));
  sim.run();
  EXPECT_NEAR(static_cast<double>(sim.now()),
              static_cast<double>(2510 * kMicrosecond),
              static_cast<double>(30 * kMicrosecond));
}

TEST(Fifo, TryPutTryGet) {
  Simulation sim;
  Fifo<int> f(sim, 2, "t");
  EXPECT_FALSE(f.try_get().has_value());
  EXPECT_TRUE(f.try_put(1));
  EXPECT_TRUE(f.try_put(2));
  EXPECT_FALSE(f.try_put(3));  // full
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(*f.try_get(), 1);
  EXPECT_EQ(*f.try_get(), 2);
  EXPECT_FALSE(f.try_get().has_value());
}

TEST(Fifo, StatsCount) {
  Simulation sim;
  Fifo<int> f(sim, 8, "t");
  for (int i = 0; i < 5; ++i) f.try_put(i);
  EXPECT_EQ(f.total_pushed(), 5u);
  EXPECT_EQ(f.max_occupancy(), 5u);
  EXPECT_EQ(f.total_popped(), 0u);
  (void)f.try_get();
  (void)f.try_get();
  EXPECT_EQ(f.total_popped(), 2u);
  EXPECT_EQ(f.max_occupancy(), 5u);  // peak is sticky
}

TEST(Fifo, BlockedPutEventsCountBackPressure) {
  Simulation sim;
  Fifo<int> f(sim, 2, "t");
  std::vector<int> out;
  sim.spawn(producer_n(sim, f, 10, 1));
  sim.spawn(consumer_n(sim, f, 10, 20, &out));
  sim.run();
  EXPECT_GT(f.blocked_put_events(), 0u);  // slow consumer stalls the producer
  EXPECT_EQ(f.max_occupancy(), 2u);
}

TEST(Simulation, MaxQueueDepthTracksHighWaterMark) {
  Simulation sim;
  EXPECT_EQ(sim.max_queue_depth(), 0u);
  for (int i = 0; i < 7; ++i) sim.schedule(i * 10, [] {});
  sim.run();
  EXPECT_EQ(sim.max_queue_depth(), 7u);  // all seven queued before any ran
  EXPECT_EQ(sim.events_executed(), 7u);
}

Process multi_stage(Simulation& sim, Fifo<std::string>& in,
                    Fifo<std::string>& out) {
  for (;;) {
    std::string v = co_await in.get();
    co_await sim.delay(5);
    co_await out.put(v + "!");
  }
}

Process string_source(Simulation& sim, Fifo<std::string>& f, int n) {
  for (int i = 0; i < n; ++i) co_await f.put("msg" + std::to_string(i));
  (void)sim;
}

Process string_sink(Simulation& sim, Fifo<std::string>& f, int n,
                    std::vector<std::string>* out) {
  for (int i = 0; i < n; ++i) out->push_back(co_await f.get());
  (void)sim;
}

TEST(Fifo, PipelineOfStagesWithStrings) {
  // Non-trivial payloads through a 2-stage pipeline; the sink outlives the
  // source (exercises buffered values after producer frame destruction).
  Simulation sim;
  Fifo<std::string> a(sim, 64, "a"), b(sim, 64, "b");
  std::vector<std::string> out;
  sim.spawn(string_source(sim, a, 30));
  sim.spawn(multi_stage(sim, a, b));
  sim.spawn(string_sink(sim, b, 30, &out));
  sim.run();
  ASSERT_EQ(out.size(), 30u);
  EXPECT_EQ(out.front(), "msg0!");
  EXPECT_EQ(out.back(), "msg29!");
}

TEST(Fifo, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    Fifo<int> f(sim, 3, "t");
    std::vector<int> out;
    sim.spawn(producer_n(sim, f, 50, 7));
    sim.spawn(consumer_n(sim, f, 50, 11, &out));
    sim.run();
    return std::make_pair(sim.now(), sim.events_executed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Trigger, FireBeforeWaitLatches) {
  Simulation sim;
  Trigger t(sim);
  t.fire(7);
  int got = -1;
  struct Waiter {
    static Process run(Trigger& t, int* got) {
      *got = co_await t.wait();
    }
  };
  sim.spawn(Waiter::run(t, &got));
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(Trigger, FireAfterWaitResumes) {
  Simulation sim;
  Trigger t(sim);
  int got = -1;
  struct Waiter {
    static Process run(Trigger& t, int* got) {
      *got = co_await t.wait();
    }
  };
  sim.spawn(Waiter::run(t, &got));
  sim.schedule(50, [&] { t.fire(3); });
  sim.run();
  EXPECT_EQ(got, 3);
}

}  // namespace
}  // namespace bm::sim

#include <gtest/gtest.h>

#include <set>

#include "fabric/policy.hpp"

namespace bm::fabric {
namespace {

const std::vector<std::string> kOrgs = {"Org1", "Org2", "Org3", "Org4"};

/// Evaluate a policy against a set of satisfied org names (peer role).
bool eval(const EndorsementPolicy& policy,
          const std::set<std::string>& satisfied_orgs) {
  return policy.evaluate([&](const PolicyPrincipal& p) {
    return p.role == Role::kPeer && satisfied_orgs.count(p.org) > 0;
  });
}

TEST(PolicyParser, SimpleConjunction) {
  const auto policy = parse_policy_or_throw("Org1 & Org2", kOrgs);
  EXPECT_TRUE(eval(policy, {"Org1", "Org2"}));
  EXPECT_FALSE(eval(policy, {"Org1"}));
  EXPECT_FALSE(eval(policy, {}));
  EXPECT_EQ(policy.min_endorsements_to_satisfy(), 2);
  EXPECT_EQ(policy.literal_references(), 2);
}

TEST(PolicyParser, SimpleDisjunction) {
  const auto policy = parse_policy_or_throw("Org1 | Org2", kOrgs);
  EXPECT_TRUE(eval(policy, {"Org1"}));
  EXPECT_TRUE(eval(policy, {"Org2"}));
  EXPECT_FALSE(eval(policy, {"Org3"}));
  EXPECT_EQ(policy.min_endorsements_to_satisfy(), 1);
}

TEST(PolicyParser, KeywordOperators) {
  const auto policy = parse_policy_or_throw("Org1 AND Org2 OR Org3", kOrgs);
  // AND binds tighter than OR.
  EXPECT_TRUE(eval(policy, {"Org3"}));
  EXPECT_TRUE(eval(policy, {"Org1", "Org2"}));
  EXPECT_FALSE(eval(policy, {"Org1"}));
}

TEST(PolicyParser, OutOfSyntaxVariants) {
  for (const char* text : {"2-outof-3 orgs", "2of3", "2 of 3 orgs", "2of3 orgs"}) {
    const auto policy = parse_policy_or_throw(text, kOrgs);
    EXPECT_EQ(policy.principals().size(), 3u) << text;
    EXPECT_EQ(policy.min_endorsements_to_satisfy(), 2) << text;
    EXPECT_TRUE(eval(policy, {"Org1", "Org3"})) << text;
    EXPECT_FALSE(eval(policy, {"Org2"})) << text;
  }
}

TEST(PolicyParser, ExplicitKOfList) {
  const auto policy =
      parse_policy_or_throw("2of(Org1, Org3, Org4)", kOrgs);
  EXPECT_TRUE(eval(policy, {"Org3", "Org4"}));
  EXPECT_FALSE(eval(policy, {"Org2", "Org3"}));
}

TEST(PolicyParser, KOfNestedSubPolicies) {
  const auto policy =
      parse_policy_or_throw("2of(Org1 & Org2, Org3, Org4)", kOrgs);
  EXPECT_TRUE(eval(policy, {"Org3", "Org4"}));
  EXPECT_TRUE(eval(policy, {"Org1", "Org2", "Org4"}));
  EXPECT_FALSE(eval(policy, {"Org1", "Org4"}));  // Org1 alone not a sub-policy
}

TEST(PolicyParser, RoleSuffixes) {
  const auto policy =
      parse_policy_or_throw("Org1.admin & Org2.client", kOrgs);
  const auto principals = policy.principals();
  ASSERT_EQ(principals.size(), 2u);
  EXPECT_EQ(principals[0].role, Role::kAdmin);
  EXPECT_EQ(principals[1].role, Role::kClient);
}

TEST(PolicyParser, ComplexPolicyFromPaper) {
  // Fig. 7f: "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4)
  //           | (Org3 & Org4)" — almost but not exactly 2of4.
  const auto policy = parse_policy_or_throw(
      "(Org1 & Org2) | (Org1 & Org4) | (Org2 & Org3) | (Org2 & Org4) | "
      "(Org3 & Org4)",
      kOrgs);
  EXPECT_EQ(policy.literal_references(), 10);
  EXPECT_EQ(policy.min_endorsements_to_satisfy(), 2);
  EXPECT_TRUE(eval(policy, {"Org1", "Org2"}));
  EXPECT_FALSE(eval(policy, {"Org1", "Org3"}));  // the not-exactly-2of4 pair
  const auto two_of_four = parse_policy_or_throw("2of4", kOrgs);
  EXPECT_TRUE(eval(two_of_four, {"Org1", "Org3"}));
}

TEST(PolicyParser, Parenthesization) {
  const auto policy =
      parse_policy_or_throw("Org1 & (Org2 | Org3)", kOrgs);
  EXPECT_TRUE(eval(policy, {"Org1", "Org3"}));
  EXPECT_FALSE(eval(policy, {"Org2", "Org3"}));
}

TEST(PolicyParser, Errors) {
  auto expect_error = [](const char* text) {
    const auto result = parse_policy(text, kOrgs);
    EXPECT_TRUE(std::holds_alternative<PolicyParseError>(result)) << text;
  };
  expect_error("");
  expect_error("Org1 &");
  expect_error("& Org1");
  expect_error("(Org1");
  expect_error("Org1 Org2");
  expect_error("5of3");          // k > n
  expect_error("0of3");          // k < 1
  expect_error("2of9 orgs");     // more orgs than the network has
  expect_error("Org1.wizard");   // unknown role
  expect_error("2of(Org1, Org2");
  EXPECT_THROW(parse_policy_or_throw("Org1 &", kOrgs), std::invalid_argument);
}

TEST(Policy, PrincipalsDeduplicated) {
  const auto policy =
      parse_policy_or_throw("(Org1 & Org2) | (Org1 & Org3)", kOrgs);
  EXPECT_EQ(policy.principals().size(), 3u);
  EXPECT_EQ(policy.literal_references(), 4);
}

TEST(Policy, CopySemantics) {
  const auto policy = parse_policy_or_throw("Org1 & Org2", kOrgs);
  EndorsementPolicy copy = policy;
  EXPECT_TRUE(eval(copy, {"Org1", "Org2"}));
  EXPECT_EQ(copy.text(), policy.text());
  EndorsementPolicy assigned;
  assigned = copy;
  EXPECT_TRUE(eval(assigned, {"Org1", "Org2"}));
}

TEST(Policy, EvaluateIdsThroughMsp) {
  Msp msp;
  msp.add_org("Org1");
  msp.add_org("Org2");
  const auto policy = parse_policy_or_throw("Org1 & Org2", msp.org_names());

  const EncodedId p1 = EncodedId::make(1, Role::kPeer, 0);
  const EncodedId p2 = EncodedId::make(2, Role::kPeer, 0);
  const EncodedId c1 = EncodedId::make(1, Role::kClient, 0);
  EXPECT_TRUE(policy.evaluate_ids({p1, p2}, msp));
  EXPECT_FALSE(policy.evaluate_ids({p1}, msp));
  EXPECT_FALSE(policy.evaluate_ids({p1, c1}, msp));  // wrong role
}

// Exhaustive check: for every subset of satisfied orgs, the parsed policy
// must agree with a reference predicate.
struct ExhaustiveCase {
  const char* text;
  int (*reference)(unsigned mask);  // mask bit i => Org(i+1) satisfied
};

int ref_2of3(unsigned m) { return __builtin_popcount(m & 0b0111) >= 2; }
int ref_and(unsigned m) { return (m & 0b0011) == 0b0011; }
int ref_mixed(unsigned m) {
  return ((m & 1) && (m & 2)) || ((m & 4) && (m & 8));
}
int ref_3of4(unsigned m) { return __builtin_popcount(m & 0b1111) >= 3; }

class PolicyExhaustive : public ::testing::TestWithParam<ExhaustiveCase> {};

TEST_P(PolicyExhaustive, MatchesReferenceOnAllSubsets) {
  const auto& param = GetParam();
  const auto policy = parse_policy_or_throw(param.text, kOrgs);
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::set<std::string> satisfied;
    for (int i = 0; i < 4; ++i)
      if (mask & (1u << i)) satisfied.insert("Org" + std::to_string(i + 1));
    EXPECT_EQ(eval(policy, satisfied), param.reference(mask) != 0)
        << param.text << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyExhaustive,
    ::testing::Values(ExhaustiveCase{"2-outof-3 orgs", ref_2of3},
                      ExhaustiveCase{"Org1 & Org2", ref_and},
                      ExhaustiveCase{"(Org1 & Org2) | (Org3 & Org4)", ref_mixed},
                      ExhaustiveCase{"3of4", ref_3of4}));

}  // namespace
}  // namespace bm::fabric

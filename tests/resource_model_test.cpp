#include <gtest/gtest.h>

#include "bmac/peer.hpp"
#include "bmac/resource_model.hpp"

namespace bm::bmac {
namespace {

struct Table1Row {
  int validators;
  int engines;
  double lut_pct;
  double ff_pct;
  double bram_pct;
};

// Table 1 of the paper (Alveo U250).
const Table1Row kTable1[] = {
    {4, 2, 20.9, 6.9, 13.1},
    {5, 3, 25.4, 7.3, 13.1},
    {8, 2, 28.5, 8.0, 13.1},
    {12, 2, 35.8, 9.1, 13.1},
    {16, 2, 43.3, 10.3, 13.1},
};

class ResourceTable1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(ResourceTable1, MatchesPaperWithinHalfPercent) {
  const Table1Row row = GetParam();
  HwConfig config;
  config.tx_validators = row.validators;
  config.engines_per_vscc = row.engines;
  const ResourceModel model;
  const ResourceUsage usage = model.estimate(config);
  EXPECT_NEAR(usage.lut_pct(), row.lut_pct, 0.5) << config.name();
  EXPECT_NEAR(usage.ff_pct(), row.ff_pct, 0.5) << config.name();
  EXPECT_NEAR(usage.bram_pct(), row.bram_pct, 0.5) << config.name();
  EXPECT_NEAR(usage.uram_pct(), 13.1, 0.5) << config.name();
}

INSTANTIATE_TEST_SUITE_P(Table1, ResourceTable1, ::testing::ValuesIn(kTable1));

TEST(ResourceModel, UtilizationScalesWithArchitecture) {
  const ResourceModel model;
  HwConfig small;
  small.tx_validators = 4;
  HwConfig large;
  large.tx_validators = 16;
  EXPECT_LT(model.estimate(small).lut, model.estimate(large).lut);
  // BRAM/URAM do not scale with V or E (Table 1's constant 13.1%).
  EXPECT_EQ(model.estimate(small).bram36, model.estimate(large).bram36);
  EXPECT_EQ(model.estimate(small).uram, model.estimate(large).uram);
}

TEST(ResourceModel, LargestConfigUnderHalfDevice) {
  // §4.3: "even the largest BMac architecture 16x2 uses less than half of
  // the FPGA resources".
  const ResourceModel model;
  HwConfig config;
  config.tx_validators = 16;
  config.engines_per_vscc = 2;
  const ResourceUsage usage = model.estimate(config);
  EXPECT_LT(usage.lut_pct(), 50.0);
  EXPECT_LT(usage.ff_pct(), 50.0);
  EXPECT_LT(usage.bram_pct(), 50.0);
}

TEST(ResourceModel, PolicyCircuitsAddGateCosts) {
  fabric::Msp msp;
  for (int i = 1; i <= 4; ++i) msp.add_org("Org" + std::to_string(i));
  std::map<std::string, fabric::EndorsementPolicy> policies;
  policies.emplace("smallbank", fabric::parse_policy_or_throw(
                                    "2-outof-4 orgs", msp.org_names()));
  const auto circuits = compile_policies(policies, msp);

  const ResourceModel model;
  HwConfig config;
  const auto without = model.estimate(config);
  const auto with = model.estimate(config, circuits);
  EXPECT_GT(with.lut, without.lut);
  // ... but by a negligible amount ("about the same for all architectures").
  EXPECT_LT(with.lut - without.lut, 2000u);
}

TEST(ResourceModel, BreakdownSumsToEstimate) {
  const ResourceModel model;
  HwConfig config;
  config.tx_validators = 5;
  config.engines_per_vscc = 3;
  std::uint64_t lut = 0;
  for (const auto& module : model.breakdown(config)) lut += module.lut;
  EXPECT_EQ(lut, model.estimate(config).lut);
}

TEST(ResourceModel, FixedUtilizationMatchesPaper) {
  const FixedUtilization fixed = ResourceModel().fixed();
  EXPECT_DOUBLE_EQ(fixed.gt_pct, 83.3);
  EXPECT_DOUBLE_EQ(fixed.bufg_pct, 2.2);
  EXPECT_DOUBLE_EQ(fixed.mmcm_pct, 6.3);
  EXPECT_DOUBLE_EQ(fixed.pcie_pct, 25.0);
}

}  // namespace
}  // namespace bm::bmac

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "wire/proto.hpp"
#include "wire/varint.hpp"

namespace bm::wire {
namespace {

TEST(Varint, KnownEncodings) {
  Bytes b;
  put_varint(b, 0);
  put_varint(b, 1);
  put_varint(b, 127);
  put_varint(b, 128);
  put_varint(b, 300);
  const Bytes expected = {0x00, 0x01, 0x7f, 0x80, 0x01, 0xac, 0x02};
  EXPECT_TRUE(equal(b, expected));
}

TEST(Varint, RoundTripProperty) {
  Rng rng(1);
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                       ~0ull, ~0ull - 1};
  for (int i = 0; i < 200; ++i)
    values.push_back(rng.next_u64() >> rng.uniform(64));
  for (const std::uint64_t v : values) {
    Bytes b;
    put_varint(b, v);
    EXPECT_EQ(b.size(), varint_size(v));
    std::size_t pos = 0;
    const auto decoded = get_varint(b, pos);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, b.size());
  }
}

TEST(Varint, RejectsTruncatedAndOverlong) {
  const Bytes truncated = {0x80, 0x80};
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(truncated, pos).has_value());

  // 10 bytes with bits beyond 64 set.
  const Bytes overlong = {0xff, 0xff, 0xff, 0xff, 0xff,
                          0xff, 0xff, 0xff, 0xff, 0x7f};
  pos = 0;
  EXPECT_FALSE(get_varint(overlong, pos).has_value());
}

TEST(Varint, ZigzagRoundTrip) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64());
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Proto, FieldRoundTrip) {
  ProtoWriter w;
  w.varint_field(1, 42);
  w.string_field(2, "hello");
  w.bool_field(3, true);
  w.fixed32_field(4, 0xDEADBEEF);
  w.fixed64_field(5, 0x0102030405060708ull);
  w.sint_field(6, -77);

  ProtoReader reader(w.bytes());
  auto f = reader.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->number, 1u);
  EXPECT_EQ(f->varint, 42u);
  f = reader.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(to_string(f->bytes), "hello");
  f = reader.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->varint, 1u);
  f = reader.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, WireType::kFixed32);
  EXPECT_EQ(f->varint, 0xDEADBEEFu);
  f = reader.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->type, WireType::kFixed64);
  EXPECT_EQ(f->varint, 0x0102030405060708ull);
  f = reader.next();
  ASSERT_TRUE(f);
  EXPECT_EQ(zigzag_decode(f->varint), -77);
  EXPECT_FALSE(reader.next());
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());
}

TEST(Proto, NestedMessages) {
  ProtoWriter inner;
  inner.string_field(1, "deep");
  ProtoWriter mid;
  mid.message_field(7, inner);
  ProtoWriter outer;
  outer.message_field(3, mid);

  const auto mid_bytes = find_bytes_field(outer.bytes(), 3);
  ASSERT_TRUE(mid_bytes);
  const auto inner_bytes = find_bytes_field(*mid_bytes, 7);
  ASSERT_TRUE(inner_bytes);
  EXPECT_EQ(to_string(*find_bytes_field(*inner_bytes, 1)), "deep");
}

TEST(Proto, DeepNestingLikeFabricBlocks) {
  // §3.2: a marshaled Fabric block nests up to 23 protobuf layers. Verify
  // the writer/reader handle arbitrary depth.
  ProtoWriter current;
  current.string_field(1, "payload");
  for (int depth = 0; depth < 23; ++depth) {
    ProtoWriter next;
    next.message_field(2, current);
    current = std::move(next);
  }
  ByteView view = current.bytes();
  Bytes owned(view.begin(), view.end());
  for (int depth = 0; depth < 23; ++depth) {
    const auto inner = find_bytes_field(owned, 2);
    ASSERT_TRUE(inner) << "depth " << depth;
    owned.assign(inner->begin(), inner->end());
  }
  EXPECT_EQ(to_string(*find_bytes_field(owned, 1)), "payload");
}

TEST(Proto, RepeatedFields) {
  ProtoWriter w;
  w.string_field(5, "a");
  w.varint_field(1, 9);
  w.string_field(5, "b");
  w.string_field(5, "c");
  const auto repeated = find_repeated_bytes(w.bytes(), 5);
  ASSERT_EQ(repeated.size(), 3u);
  EXPECT_EQ(to_string(repeated[0]), "a");
  EXPECT_EQ(to_string(repeated[2]), "c");
}

TEST(Proto, UnknownFieldsAreSkippable) {
  ProtoWriter w;
  w.varint_field(99, 5);
  w.string_field(2, "target");
  EXPECT_EQ(to_string(*find_bytes_field(w.bytes(), 2)), "target");
  EXPECT_FALSE(find_bytes_field(w.bytes(), 3).has_value());
  EXPECT_EQ(*find_varint_field(w.bytes(), 99), 5u);
}

TEST(Proto, MalformedInputSetsError) {
  // Length-delimited field whose length exceeds the buffer.
  Bytes bad;
  put_varint(bad, (2ull << 3) | 2);  // field 2, length-delimited
  put_varint(bad, 100);              // claims 100 bytes
  bad.push_back('x');
  ProtoReader reader(bad);
  EXPECT_FALSE(reader.next());
  EXPECT_FALSE(reader.ok());

  // Field number 0 is invalid.
  const Bytes zero_field = {0x00};
  ProtoReader r2(zero_field);
  EXPECT_FALSE(r2.next());
  EXPECT_FALSE(r2.ok());

  // Wire type 3 (deprecated groups) unsupported.
  const Bytes group = {0x0b};
  ProtoReader r3(group);
  EXPECT_FALSE(r3.next());
  EXPECT_FALSE(r3.ok());
}

TEST(Proto, RandomizedWriterReaderRoundTrip) {
  Rng rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    ProtoWriter w;
    struct Expect {
      std::uint32_t number;
      bool is_bytes;
      std::uint64_t varint;
      Bytes bytes;
    };
    std::vector<Expect> expected;
    const int n = 1 + static_cast<int>(rng.uniform(10));
    for (int i = 0; i < n; ++i) {
      const auto field = static_cast<std::uint32_t>(1 + rng.uniform(200));
      if (rng.chance(0.5)) {
        const std::uint64_t v = rng.next_u64() >> rng.uniform(64);
        w.varint_field(field, v);
        expected.push_back({field, false, v, {}});
      } else {
        const Bytes data = rng.bytes(rng.uniform(64));
        w.bytes_field(field, data);
        expected.push_back({field, true, 0, data});
      }
    }
    ProtoReader reader(w.bytes());
    for (const auto& e : expected) {
      const auto f = reader.next();
      ASSERT_TRUE(f);
      EXPECT_EQ(f->number, e.number);
      if (e.is_bytes) EXPECT_TRUE(equal(f->bytes, e.bytes));
      else EXPECT_EQ(f->varint, e.varint);
    }
    EXPECT_FALSE(reader.next());
    EXPECT_TRUE(reader.ok());
  }
}

}  // namespace
}  // namespace bm::wire

// ValidatorBackend seam tests: every software backend configuration (cache
// on/off, any parallelism, any StateDb shard count) must produce
// byte-identical validation flags and commit hashes — the cache and the
// sharding are throughput knobs, never semantics. Plus adversarial coverage
// for the VerifyCache itself: its key must commit to ALL inputs of a
// verification, so replaying valid signature bytes against a different
// digest can never be served from the cache.
#include <gtest/gtest.h>

#include <deque>

#include "common/thread_pool.hpp"
#include "crypto/der.hpp"
#include "crypto/verify_cache.hpp"
#include "fabric/orderer.hpp"
#include "fabric/statedb.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"

namespace bm::fabric {
namespace {

// ---------------------------------------------------------------------------
// VerifyCache: adversarial key-separation and accounting.

crypto::Digest digest_of(const std::string& s) {
  return crypto::sha256(to_bytes(s));
}

TEST(VerifyCache, RepeatHitsAfterFirstMiss) {
  crypto::VerifyCache cache(16);
  const auto key = crypto::key_from_seed(to_bytes("endorser"));
  const auto digest = digest_of("payload");
  const auto sig = crypto::sign(key, digest);
  const Bytes der = crypto::der_encode_signature(sig);

  EXPECT_TRUE(cache.verify(key.public_key(), digest, der, sig));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  EXPECT_TRUE(cache.verify(key.public_key(), digest, der, sig));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifyCache, SameSignatureBytesOverDifferentDigestMissesAndFails) {
  // The adversarial replay: a perfectly valid signature over digest A,
  // presented as covering digest B. A cache keyed only on signature bytes
  // would hit the cached `true`; ours must miss and fail.
  crypto::VerifyCache cache(16);
  const auto key = crypto::key_from_seed(to_bytes("endorser"));
  const auto good = digest_of("the endorsed payload");
  const auto evil = digest_of("a different payload");
  const auto sig = crypto::sign(key, good);
  const Bytes der = crypto::der_encode_signature(sig);

  ASSERT_TRUE(cache.verify(key.public_key(), good, der, sig));
  EXPECT_FALSE(cache.verify(key.public_key(), evil, der, sig));
  EXPECT_EQ(cache.misses(), 2u) << "replay must not be served from cache";
  EXPECT_EQ(cache.hits(), 0u);

  // The negative outcome is itself cached — and stays negative.
  EXPECT_FALSE(cache.verify(key.public_key(), evil, der, sig));
  EXPECT_EQ(cache.hits(), 1u);
  // The original entry is untouched by the failed replay.
  EXPECT_TRUE(cache.verify(key.public_key(), good, der, sig));
}

TEST(VerifyCache, SameDigestUnderDifferentKeyMisses) {
  crypto::VerifyCache cache(16);
  const auto alice = crypto::key_from_seed(to_bytes("alice"));
  const auto mallory = crypto::key_from_seed(to_bytes("mallory"));
  const auto digest = digest_of("payload");
  const auto sig = crypto::sign(alice, digest);
  const Bytes der = crypto::der_encode_signature(sig);

  ASSERT_TRUE(cache.verify(alice.public_key(), digest, der, sig));
  EXPECT_FALSE(cache.verify(mallory.public_key(), digest, der, sig));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(VerifyCache, LruEvictsOldestAtCapacity) {
  crypto::VerifyCache cache(2);
  const auto key = crypto::key_from_seed(to_bytes("endorser"));
  const auto pub = key.public_key();
  auto entry = [&](const std::string& s) {
    const auto digest = digest_of(s);
    const auto sig = crypto::sign(key, digest);
    return cache.verify(pub, digest, crypto::der_encode_signature(sig), sig);
  };

  EXPECT_TRUE(entry("a"));
  EXPECT_TRUE(entry("b"));
  EXPECT_TRUE(entry("a"));  // touch a: b becomes the LRU victim
  EXPECT_TRUE(entry("c"));  // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  const auto misses_before = cache.misses();
  EXPECT_TRUE(entry("b"));  // evicted → full re-verification (displaces a)
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_TRUE(entry("c"));  // most recent before b's return: still cached
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

// ---------------------------------------------------------------------------
// Backend swap: all configurations are observably identical.

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() {
    org1_ = &msp_.add_org("Org1");
    org2_ = &msp_.add_org("Org2");
    client_ = org1_->issue(Role::kClient, 0, "client0.org1");
    peer1_ = org1_->issue(Role::kPeer, 0, "peer0.org1");
    peer2_ = org2_->issue(Role::kPeer, 0, "peer0.org2");
    orderer_ = std::make_unique<Orderer>(
        org1_->issue(Role::kOrderer, 0, "orderer0.org1"),
        Orderer::Config{.max_tx_per_block = 100});
    policies_.emplace("smallbank",
                      parse_policy_or_throw("Org1 & Org2", msp_.org_names()));
  }

  Bytes make_tx(const std::string& id,
                const std::vector<const Identity*>& endorsers,
                ReadWriteSet rwset = {}) {
    TxProposal proposal;
    proposal.channel_id = "ch";
    proposal.chaincode_id = "smallbank";
    proposal.tx_id = id;
    if (rwset.reads.empty() && rwset.writes.empty())
      rwset.writes.push_back({"k_" + id, to_bytes("v")});
    proposal.rwset = std::move(rwset);
    return build_envelope(proposal, client_, endorsers);
  }

  Block cut(std::vector<Bytes> envelopes) {
    for (auto& env : envelopes) orderer_->submit(std::move(env));
    return *orderer_->flush();
  }

  /// A block exercising every validation outcome.
  std::vector<Bytes> mixed_envelopes(int block) {
    const std::string tag = std::to_string(block);
    std::vector<Bytes> envs;
    for (int i = 0; i < 6; ++i)
      envs.push_back(
          make_tx("ok" + tag + "_" + std::to_string(i), {&peer1_, &peer2_}));
    envs.push_back(make_tx("short" + tag, {&peer1_}));  // policy failure
    envs.push_back(to_bytes("garbage " + tag));         // bad payload
    Bytes bad = make_tx("sig" + tag, {&peer1_, &peer2_});
    bad.back() ^= 1;  // bad creator signature
    envs.push_back(std::move(bad));
    ReadWriteSet rw;
    rw.reads.push_back({"shared" + tag, std::nullopt});
    rw.writes.push_back({"shared" + tag, to_bytes("x")});
    envs.push_back(make_tx("m1" + tag, {&peer1_, &peer2_}, rw));  // valid
    envs.push_back(make_tx("m2" + tag, {&peer1_, &peer2_}, rw));  // conflict
    return envs;
  }

  Msp msp_;
  CertificateAuthority* org1_;
  CertificateAuthority* org2_;
  Identity client_, peer1_, peer2_;
  std::unique_ptr<Orderer> orderer_;
  std::map<std::string, EndorsementPolicy> policies_;
};

TEST_F(BackendTest, AllBackendConfigurationsProduceIdenticalResults) {
  // One backend per knob setting, each with its own StateDb at a different
  // shard count, fed the same three blocks: flags, commit hashes, valid
  // counts and DB sizes must be identical across the board.
  struct Lane {
    std::unique_ptr<ValidatorBackend> backend;
    StateDb db;
    Ledger ledger;
    Lane(std::unique_ptr<ValidatorBackend> b, std::size_t shards)
        : backend(std::move(b)), db(shards) {}
  };
  std::deque<Lane> lanes;
  lanes.emplace_back(make_software_backend(msp_, policies_), 1);
  lanes.emplace_back(
      make_software_backend(msp_, policies_, {.parallelism = 1}), 3);
  lanes.emplace_back(
      make_software_backend(msp_, policies_,
                            {.parallelism = 4, .verify_cache_capacity = 1024}),
      8);
  // A pathologically small cache: constant eviction churn must still be
  // invisible in the results.
  lanes.emplace_back(
      make_software_backend(msp_, policies_,
                            {.parallelism = 2, .verify_cache_capacity = 2}),
      13);

  for (int b = 0; b < 3; ++b) {
    const Block block = cut(mixed_envelopes(b));
    const auto reference =
        lanes[0].backend->validate_and_commit(block, lanes[0].db,
                                              lanes[0].ledger);
    for (std::size_t i = 1; i < lanes.size(); ++i) {
      const auto result = lanes[i].backend->validate_and_commit(
          block, lanes[i].db, lanes[i].ledger);
      ASSERT_EQ(result.flags, reference.flags) << "lane " << i << " block " << b;
      ASSERT_EQ(result.commit_hash, reference.commit_hash)
          << "lane " << i << " block " << b;
      EXPECT_EQ(result.valid_tx_count, reference.valid_tx_count);
      EXPECT_EQ(result.block_valid, reference.block_valid);
      EXPECT_EQ(lanes[i].db.size(), lanes[0].db.size());
    }
  }
  for (const auto& lane : lanes) EXPECT_EQ(lane.ledger.height(), 3u);

  // Stats that feed the timing model must not depend on the configuration.
  const auto& ref_stats = lanes[0].backend->stats();
  for (std::size_t i = 1; i < lanes.size(); ++i) {
    EXPECT_EQ(lanes[i].backend->stats().endorsement_signature_checks,
              ref_stats.endorsement_signature_checks);
    EXPECT_EQ(lanes[i].backend->stats().db_writes, ref_stats.db_writes);
  }
}

TEST_F(BackendTest, RepeatedEndorsementsHitTheCache) {
  // The endorsement digest is H(chaincode || rwset || cert) — transactions
  // sharing an rwset carry bit-identical (RFC 6979) endorsement signatures,
  // so only the first one per endorser costs a real verification.
  std::vector<Bytes> envs;
  for (int i = 0; i < 10; ++i) {
    ReadWriteSet rw;
    rw.writes.push_back({"hot", to_bytes("v")});  // blind write: no conflict
    envs.push_back(
        make_tx("t" + std::to_string(i), {&peer1_, &peer2_}, std::move(rw)));
  }
  const Block block = cut(std::move(envs));

  SoftwareValidator cached(msp_, policies_);
  cached.enable_verify_cache(1024);
  SoftwareValidator plain(msp_, policies_);
  StateDb db_cached, db_plain;
  Ledger ledger_cached, ledger_plain;
  const auto r_cached =
      cached.validate_and_commit(block, db_cached, ledger_cached);
  const auto r_plain = plain.validate_and_commit(block, db_plain, ledger_plain);

  EXPECT_EQ(r_cached.flags, r_plain.flags);
  EXPECT_EQ(r_cached.commit_hash, r_plain.commit_hash);
  EXPECT_EQ(r_cached.valid_tx_count, 10u);

  ASSERT_NE(cached.verify_cache(), nullptr);
  // 10 txs x 2 endorsements: one miss per endorser, the rest hits. (The
  // stats still count every check — the cache changes cost, not counting.)
  EXPECT_EQ(cached.verify_cache()->misses(), 2u);
  EXPECT_EQ(cached.verify_cache()->hits(), 18u);
  EXPECT_EQ(cached.stats().endorsement_signature_checks,
            plain.stats().endorsement_signature_checks);
}

TEST_F(BackendTest, FactoryProducesIndependentBackends) {
  const auto factory = software_backend_factory({.verify_cache_capacity = 64});
  auto a = factory(msp_, policies_);
  auto b = factory(msp_, policies_);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  const Block block = cut(mixed_envelopes(0));
  StateDb db_a, db_b;
  Ledger ledger_a, ledger_b;
  const auto r_a = a->validate_and_commit(block, db_a, ledger_a);
  const auto r_b = b->validate_and_commit(block, db_b, ledger_b);
  EXPECT_EQ(r_a.flags, r_b.flags);
  EXPECT_EQ(r_a.commit_hash, r_b.commit_hash);
  EXPECT_EQ(a->stats().blocks_processed, 1u);
  EXPECT_EQ(b->stats().blocks_processed, 1u);
}

// ---------------------------------------------------------------------------
// Sharded StateDb: the batched commit is observably identical to puts.

TEST(ShardedStateDb, BatchCommitMatchesIndividualPuts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{7}, std::size_t{16}}) {
    StateDb batched(shards);
    StateDb plain(1);
    StateDb::WriteBatch batch = batched.make_batch();
    for (int i = 0; i < 40; ++i) {
      const std::string key =
          StateDb::namespaced("smallbank", "key" + std::to_string(i % 13));
      const Bytes value = to_bytes("v" + std::to_string(i));
      const Version version{1, static_cast<std::uint32_t>(i)};
      batch.add(std::string(key), value, version);
      plain.put(key, value, version);
    }
    batched.commit_batch(std::move(batch));

    ASSERT_EQ(batched.size(), plain.size()) << shards << " shards";
    for (int i = 0; i < 13; ++i) {
      const std::string key =
          StateDb::namespaced("smallbank", "key" + std::to_string(i));
      const auto got = batched.get(key);
      const auto want = plain.get(key);
      ASSERT_TRUE(got.has_value()) << key;
      ASSERT_TRUE(want.has_value()) << key;
      EXPECT_EQ(got->value, want->value) << key;
      EXPECT_EQ(got->version, want->version)
          << key << ": later write in the batch must win";
    }
  }
}

TEST(ShardedStateDb, ParallelBatchApplyMatchesSerial) {
  ThreadPool pool(4);
  StateDb serial(8), parallel(8);
  auto fill = [](StateDb& db, ThreadPool* p) {
    StateDb::WriteBatch batch = db.make_batch();
    for (int i = 0; i < 200; ++i)
      batch.add("key" + std::to_string(i),
                to_bytes("value" + std::to_string(i)),
                Version{3, static_cast<std::uint32_t>(i)});
    db.commit_batch(std::move(batch), p);
  };
  fill(serial, nullptr);
  fill(parallel, &pool);

  ASSERT_EQ(parallel.size(), serial.size());
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    const auto got = parallel.get(key);
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(got->value, serial.get(key)->value);
    EXPECT_EQ(got->version, serial.get(key)->version);
  }
}

}  // namespace
}  // namespace bm::fabric

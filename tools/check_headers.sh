#!/usr/bin/env bash
# Header self-containment lint: every public header under src/ and bench/
# must compile as its own translation unit (all of its includes spelled out,
# nothing leaking in from whoever happened to include it first). Run from
# the repo root; exits non-zero listing every offender.
set -u

cxx="${CXX:-g++}"
root="$(cd "$(dirname "$0")/.." && pwd)"
failed=0
checked=0

for header in $(cd "$root" && find src bench -name '*.hpp' | sort); do
  checked=$((checked + 1))
  if ! out="$("$cxx" -std=c++20 -fsyntax-only -I "$root/src" -I "$root/bench" \
        -x c++ "$root/$header" 2>&1)"; then
    failed=$((failed + 1))
    echo "NOT SELF-CONTAINED: $header"
    echo "$out" | head -n 12
    echo
  fi
done

echo "$checked headers checked, $failed not self-contained"
[ "$failed" -eq 0 ]

// bmac_sim: command-line driver for the Blockchain Machine simulator.
//
// Subcommands:
//   throughput [--config FILE] [--blocks N] [--block-size N] [--vcpus N]
//       Run the saturating workload on the configured hardware architecture
//       and print BMac vs software-peer performance.
//   resources [--config FILE]
//       FPGA resource estimate (Table 1 style) for the configured
//       architecture and its compiled policy circuits.
//   validate [--config FILE] [--blocks N] [--block-size N] [--faults]
//            [--verify-cache N] [--db-shards N] [--ledger FILE]
//            [--snapshot-interval N]
//       Run real endorsed blocks through both validators end to end and
//       report the §4.1 consistency check. --verify-cache N gives the
//       software backend an N-entry endorsement-verification cache;
//       --db-shards N sets the software state DB's shard count (both leave
//       the commit hashes unchanged — that is the point). --ledger FILE
//       persists the committed chain to an on-disk block log, cutting a
//       StateDb snapshot every --snapshot-interval N blocks
//       (docs/DURABILITY.md).
//   recover --ledger FILE
//       Rebuild ledger + world state from a block log written by a
//       --ledger run (newest intact snapshot + replay, falling back to a
//       full replay) and print the recovered chain position.
//   protocol [--config FILE] [--block-size N]
//       BMac protocol vs Gossip block sizes on real marshaled blocks.
//   chaos --scenario FILE [--blocks N] [--block-size N] [--tamper]
//       Drive the degraded-path stack (GBN + fault injection + software
//       fallback) with a fault schedule and check the committed chain
//       against the fault-free reference (docs/FAULTS.md). --scenario takes
//       a composed scenario file and reads its "faults" (and "slo")
//       sections. (The pre-scenario --faults-config alias was removed; wrap
//       a standalone faults_*.json as {"faults": {...}}.)
//   serve [--scenario FILE]
//       Run the open-loop client-serving front end (traffic -> admission ->
//       endorse -> order -> commit, docs/SERVING.md) and print the SLO
//       report. --scenario takes a composed configs/scenario_*.json file
//       (serve + sessions + durability + slo sections, docs/SERVING.md).
//       Without it, a built-in steady Poisson scenario is used. (The
//       pre-scenario --serve-config alias was removed; wrap a standalone
//       serve_*.json as {"serve": {...}}.)
//   cluster [--scenario FILE] [--blocks N] [--kill-leader] [--data-dir DIR]
//       Run an N-org/M-peer deployment with a Raft ordering cluster,
//       payload gossip and peer state transfer (docs/CLUSTER.md), checking
//       every peer against the single-peer reference commit-hash chain.
//       --scenario reads the "cluster" section of a composed scenario file
//       (configs/scenario_cluster.json); --kill-leader crashes the Raft
//       leader mid-run; --data-dir enables per-peer durable logs +
//       snapshot-based catch-up. Exit code 0 iff the cluster converged.
//
// Observability (throughput and validate): --trace-out FILE writes a Chrome
// trace-event JSON of the whole run (open in Perfetto / chrome://tracing);
// --metrics-out FILE writes a JSON metrics snapshot; --metrics-text FILE
// writes the same snapshot in Prometheus text-exposition format. Outputs
// are deterministic: two identical invocations produce byte-identical
// files. When the first argument is an option, the command defaults to
// `validate`.
//
// Continuous telemetry (chaos and serve, docs/OBSERVABILITY.md):
// --sample-interval MS samples every metric on the simulated clock into
// --timeseries-out / --timeseries-csv; --slo-config FILE evaluates SLO
// burn-rate rules during the run (--slo-out writes the alert log);
// --flight-out FILE arms the per-transaction flight recorder, dumped at the
// first SLO alert / watchdog fire / fallback activation.
//
// Without --config, a built-in two-org smallbank deployment is used.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "bmac/config.hpp"
#include "bmac/peer.hpp"
#include "bmac/resource_model.hpp"
#include "cluster/cluster.hpp"
#include "common/cli.hpp"
#include "common/hex.hpp"
#include "common/log.hpp"
#include "fabric/validator.hpp"
#include "fabric/validator_backend.hpp"
#include "obs/artifacts.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/config.hpp"
#include "serve/pipeline.hpp"
#include "serve/scenario.hpp"
#include "workload/chaos.hpp"
#include "workload/network_harness.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace bm;

constexpr const char* kDefaultConfig = R"yaml(
network:
  orgs: [Org1, Org2]
chaincodes:
  - name: smallbank
    policy: "2-outof-2 orgs"
hardware:
  tx_validators: 8
  engines_per_vscc: 2
  max_block_txs: 256
  db_capacity: 8192
)yaml";

struct Options {
  std::string command;
  std::string config_path;
  int blocks = 40;
  int block_size = 150;
  int vcpus = 8;
  bool faults = false;
  bool tamper = false;
  std::size_t verify_cache = 0;  ///< 0 = no endorsement-verification cache
  std::size_t comb_tables = 0;   ///< 0 = no per-identity comb-table cache
  bool parallel_commit = false;  ///< dependency-aware parallel MVCC + commit
  std::size_t db_shards = fabric::StateDb::kDefaultShards;
  std::string scenario_path;  ///< composed configs/scenario_*.json
  std::string ledger_path;   ///< on-disk block log (validate writes, recover reads)
  std::size_t snapshot_interval = 0;  ///< StateDb snapshot cadence (0 = never)
  bool kill_leader = false;  ///< cluster: crash the Raft leader mid-run
  std::string data_dir;      ///< cluster: per-peer durable logs + snapshots
  cli::CommonFlags flags;  ///< shared --trace-out/--metrics-*/telemetry
  std::string usage;       ///< flag help lines, filled by parse_args
};

bool parse_args(int argc, char** argv, Options& options) {
  cli::ArgParser parser;
  parser.add_string("--config", &options.config_path, "deployment YAML");
  parser.add_int("--blocks", &options.blocks, "blocks to run");
  parser.add_int("--block-size", &options.block_size, "transactions per block");
  parser.add_int("--vcpus", &options.vcpus, "software peer vCPUs");
  bool faults_flag = false, tamper_flag = false;
  parser.add_flag("--faults", &faults_flag, "inject invalid transactions");
  parser.add_flag("--tamper", &tamper_flag, "corrupt the last block's signature");
  parser.add_size("--verify-cache", &options.verify_cache,
                  "endorsement-verification cache entries (0 = off)");
  parser.add_size("--comb-tables", &options.comb_tables,
                  "per-identity ECDSA comb tables to cache (0 = off)");
  bool parallel_commit_flag = false;
  parser.add_flag("--parallel-commit", &parallel_commit_flag,
                  "dependency-aware parallel MVCC + commit");
  parser.add_size("--db-shards", &options.db_shards,
                  "software state DB shard count");
  parser.add_string("--scenario", &options.scenario_path,
                    "composed scenario JSON (configs/scenario_*.json)");
  parser.add_string("--ledger", &options.ledger_path,
                    "on-disk block log (validate writes it, recover reads it)");
  parser.add_size("--snapshot-interval", &options.snapshot_interval,
                  "cut a StateDb snapshot every N blocks (0 = never)");
  bool kill_leader_flag = false;
  parser.add_flag("--kill-leader", &kill_leader_flag,
                  "cluster: crash the Raft leader mid-run");
  parser.add_string("--data-dir", &options.data_dir,
                    "cluster: directory for per-peer durable logs");
  options.flags.register_with(parser);
  options.usage = parser.help_text();

  if (argc < 2) return false;
  int start = 2;
  if (argv[1][0] == '-') {
    // Plain `bmac_sim --trace-out t.json` etc.: default to the end-to-end
    // validate run, which exercises every pipeline stage.
    options.command = "validate";
    start = 1;
  } else {
    options.command = argv[1];
  }
  if (!parser.parse(argc, argv, start)) {
    std::fprintf(stderr, "%s\n", parser.error().c_str());
    return false;
  }
  options.faults = faults_flag;
  options.tamper = tamper_flag;
  options.parallel_commit = parallel_commit_flag;
  options.kill_leader = kill_leader_flag;
  return true;
}

bmac::BmacConfig load_config(const Options& options) {
  if (!options.config_path.empty())
    return bmac::load_config_file(options.config_path);
  auto parsed = bmac::parse_config(kDefaultConfig);
  return std::get<bmac::BmacConfig>(parsed);
}

int cmd_throughput(const Options& options) {
  const auto config = load_config(options);
  const auto& [chaincode, policy_text] = *config.chaincode_policies.begin();

  workload::SyntheticSpec spec;
  spec.blocks = options.blocks;
  spec.block_size = options.block_size;
  spec.chaincode = chaincode;
  spec.policy_text = policy_text;
  spec.org_count = static_cast<int>(config.orgs.size());
  {
    // Attach one endorsement per policy principal, like the paper's clients.
    const auto policy =
        fabric::parse_policy_or_throw(policy_text, config.orgs);
    spec.ends_attached = static_cast<int>(policy.principals().size());
  }
  spec.hw = config.hw;

  obs::Registry registry;
  obs::Tracer tracer;
  if (options.flags.wants_obs()) {
    tracer.begin_process("bmac " + config.hw.name());
    spec.registry = &registry;
    spec.tracer = &tracer;
  }
  const auto hw = workload::run_hw_workload(spec);
  const auto sw = workload::run_sw_model(spec, options.vcpus);
  std::printf("chaincode '%s', policy \"%s\", block size %d, %d blocks\n",
              chaincode.c_str(), policy_text.c_str(), options.block_size,
              options.blocks);
  std::printf("BMac peer (%s):   %9.0f tps | block latency %6.2f ms | tx "
              "latency %4.0f us\n",
              config.hw.name().c_str(), hw.tps, hw.block_latency_ms,
              hw.tx_latency_us);
  std::printf("sw validator (%2d vCPUs): %6.0f tps | block latency %6.1f ms\n",
              options.vcpus, sw.validator_tps, sw.block_latency_ms);
  std::printf("endorser    (%2d vCPUs): %7.0f tps\n", options.vcpus,
              sw.endorser_tps);
  std::printf("speedup: %.1fx | hw signatures executed %llu, skipped %llu\n",
              hw.tps / sw.validator_tps,
              static_cast<unsigned long long>(hw.ecdsa_executed),
              static_cast<unsigned long long>(hw.ecdsa_skipped));
  if (options.flags.wants_obs()) {
    const auto at =
        static_cast<sim::Time>(hw.sim_seconds * sim::kSecond);
    return obs::write_artifacts(options.flags, registry, tracer, at);
  }
  return 0;
}

int cmd_resources(const Options& options) {
  const auto config = load_config(options);
  fabric::Msp msp;
  config.populate_msp(msp);
  const auto circuits = bmac::compile_policies(config.parse_policies(), msp);

  const bmac::ResourceModel model;
  const auto usage = model.estimate(config.hw, circuits);
  std::printf("architecture %s on Alveo U250:\n", config.hw.name().c_str());
  std::printf("  LUT  %6.1f%%   FF  %6.1f%%   BRAM %6.1f%%   URAM %6.1f%%\n",
              usage.lut_pct(), usage.ff_pct(), usage.bram_pct(),
              usage.uram_pct());
  std::printf("module breakdown:\n");
  for (const auto& module : model.breakdown(config.hw, circuits))
    std::printf("  %-66s LUT %8llu  FF %8llu\n", module.name.c_str(),
                static_cast<unsigned long long>(module.lut),
                static_cast<unsigned long long>(module.ff));
  return 0;
}

int cmd_validate(const Options& options) {
  const auto config = load_config(options);
  workload::NetworkOptions net_options;
  net_options.orgs = static_cast<int>(config.orgs.size());
  net_options.policy_text = config.chaincode_policies.begin()->second;
  net_options.block_size = static_cast<std::size_t>(options.block_size);
  if (options.faults) {
    net_options.bad_signature_rate = 0.1;
    net_options.missing_endorsement_rate = 0.1;
    net_options.conflicting_read_rate = 0.15;
  }
  if (!options.ledger_path.empty()) {
    net_options.durability.ledger_path = options.ledger_path;
    net_options.durability.snapshot_interval = options.snapshot_interval;
  }
  workload::FabricNetworkHarness harness(net_options);

  fabric::StateDb sw_db(options.db_shards);
  fabric::Ledger sw_ledger;
  // The software side goes through the ValidatorBackend seam: cache and
  // shard count are tuning knobs, not semantics — the consistency check
  // below must PASS at any setting.
  const auto sw = fabric::make_software_backend(
      harness.msp(), harness.policies(),
      {.parallelism =
           options.parallel_commit ? static_cast<unsigned>(options.vcpus) : 0u,
       .verify_cache_capacity = options.verify_cache,
       .comb_table_capacity = options.comb_tables,
       .parallel_commit = options.parallel_commit});

  sim::Simulation sim;
  bmac::BmacPeer peer(sim, harness.msp(), config.hw, harness.policies());
  obs::Registry registry;
  obs::Tracer tracer;
  if (options.flags.wants_obs()) {
    sim::attach_log_clock(sim);
    tracer.begin_process("bmac_peer " + config.hw.name());
    peer.attach_observability(&registry, &tracer);
  }
  peer.start();
  bmac::ProtocolSender protocol(harness.msp());

  int valid = 0, invalid = 0;
  for (int b = 0; b < options.blocks; ++b) {
    const fabric::Block block = harness.next_block();
    const auto result = sw->validate_and_commit(block, sw_db, sw_ledger);
    valid += static_cast<int>(result.valid_tx_count);
    invalid +=
        static_cast<int>(block.tx_count()) - static_cast<int>(result.valid_tx_count);
    for (const auto& packet : protocol.send(block).packets)
      peer.deliver_packet(packet);
    peer.deliver_block(block);
    sim.run();
  }

  bool match = sw_ledger.height() == peer.ledger().height();
  for (std::uint64_t b = 0; match && b < sw_ledger.height(); ++b)
    match = sw_ledger.at(b).commit_hash == peer.ledger().at(b).commit_hash;

  std::printf("%d blocks, %d valid / %d invalid transactions\n",
              options.blocks, valid, invalid);
  std::printf("final commit hash: %s\n",
              hex_encode(crypto::digest_view(sw_ledger.last().commit_hash))
                  .c_str());
  std::printf("hw/sw consistency: %s\n", match ? "PASS" : "FAIL");
  if (harness.durable() != nullptr) {
    harness.durable()->sync();
    const fabric::FileBlockStore& store = harness.durable()->store();
    std::printf("durable ledger: %llu blocks (%llu bytes) at %s, "
                "%llu snapshots (newest at height %llu)\n",
                static_cast<unsigned long long>(store.height()),
                static_cast<unsigned long long>(store.bytes_written()),
                options.ledger_path.c_str(),
                static_cast<unsigned long long>(
                    harness.durable()->snapshots_cut()),
                static_cast<unsigned long long>(
                    harness.durable()->last_snapshot_height()));
  }
  if (options.flags.wants_obs()) {
    peer.publish_metrics();
    sw->publish_metrics(registry, "fabric_sw");
    sw_db.publish_metrics(registry, "fabric_sw_statedb");
    if (harness.durable() != nullptr)
      harness.durable()->publish_metrics(registry, "durable");
    sim::detach_log_clock();
    const int rc = obs::write_artifacts(options.flags, registry, tracer,
                                        sim.now());
    if (rc != 0) return rc;
  }
  return match ? 0 : 1;
}

int cmd_protocol(const Options& options) {
  const auto config = load_config(options);
  workload::NetworkOptions net_options;
  net_options.orgs = static_cast<int>(config.orgs.size());
  net_options.policy_text = config.chaincode_policies.begin()->second;
  net_options.block_size = static_cast<std::size_t>(options.block_size);
  workload::FabricNetworkHarness harness(net_options);
  bmac::ProtocolSender sender(harness.msp());
  sender.send(harness.next_block());  // warm the identity cache
  const auto result = sender.send(harness.next_block());
  std::printf("block of %d txs: gossip %zu B, bmac %zu B (%.1fx smaller, "
              "%.1f%% bandwidth saved)\n",
              options.block_size, result.gossip_size, result.bmac_size,
              static_cast<double>(result.gossip_size) / result.bmac_size,
              100.0 * (1.0 - static_cast<double>(result.bmac_size) /
                                 result.gossip_size));
  std::printf("%zu packets; %zu identities removed (%zu bytes)\n",
              result.packets.size(), result.identities_removed,
              result.identity_bytes_removed);
  return 0;
}

int cmd_recover(const Options& options) {
  if (options.ledger_path.empty()) {
    std::fprintf(stderr, "recover needs --ledger FILE (a block log written "
                         "by `validate --ledger`)\n");
    return 2;
  }
  fabric::DurabilityConfig config;
  config.ledger_path = options.ledger_path;

  fabric::Ledger ledger;
  fabric::StateDb state(options.db_shards);
  const fabric::RecoveryResult result =
      fabric::DurableLedger::recover(config, ledger, state);

  std::printf("recovered %llu blocks (%llu replayed from the log%s) "
              "in %.2f ms\n",
              static_cast<unsigned long long>(result.height),
              static_cast<unsigned long long>(result.blocks_replayed),
              result.used_snapshot
                  ? (", snapshot at height " +
                     std::to_string(result.snapshot_height))
                        .c_str()
                  : ", no snapshot",
              result.duration_s * 1e3);
  if (result.torn_bytes > 0)
    std::printf("torn tail: %llu bytes discarded\n",
                static_cast<unsigned long long>(result.torn_bytes));
  std::printf("world state: %zu keys\n", state.size());
  if (result.height > 0)
    std::printf("final commit hash: %s\n",
                hex_encode(crypto::digest_view(ledger.last_commit_hash()))
                    .c_str());
  if (!result.ok)
    std::printf("recovery FAILED: %s\n", result.error.c_str());

  if (options.flags.wants_obs()) {
    obs::Registry registry;
    obs::Tracer tracer;
    fabric::DurableLedger::publish_recovery_metrics(registry, "recover",
                                                    result);
    state.publish_metrics(registry, "recover_statedb");
    const int rc = obs::write_artifacts(options.flags, registry, tracer, 0);
    if (rc != 0) return rc;
  }
  return result.ok ? 0 : 1;
}

int cmd_chaos(const Options& options) {
  net::FaultScenario fault_scenario;
  std::optional<obs::SloConfig> inline_slo;
  if (!options.scenario_path.empty()) {
    std::string error;
    const auto loaded = serve::load_scenario(options.scenario_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   options.scenario_path.c_str(), error.c_str());
      return 2;
    }
    if (!loaded->faults) {
      std::fprintf(stderr, "%s: chaos needs a \"faults\" section\n",
                   options.scenario_path.c_str());
      return 2;
    }
    fault_scenario = *loaded->faults;
    if (fault_scenario.name.empty()) fault_scenario.name = loaded->name;
    inline_slo = loaded->slo;
  } else {
    std::fprintf(stderr,
                 "chaos needs --scenario FILE (see configs/scenario_*.json)\n");
    return 2;
  }

  workload::ChaosOptions chaos;
  chaos.scenario = fault_scenario;
  chaos.blocks = options.blocks;
  chaos.network.block_size = static_cast<std::size_t>(options.block_size);
  chaos.tamper_last_block = options.tamper;
  if (!options.config_path.empty()) chaos.hw = load_config(options).hw;

  obs::Registry registry;
  obs::Tracer tracer;
  obs::Telemetry telemetry;
  const bool obs_on = options.flags.wants_obs();
  std::string telemetry_error;
  if (!telemetry.configure(options.flags, &telemetry_error)) {
    std::fprintf(stderr, "%s\n", telemetry_error.c_str());
    return 2;
  }
  if (inline_slo) telemetry.set_slo_config(std::move(inline_slo));
  if (obs_on) tracer.begin_process("chaos " + fault_scenario.name);
  const workload::ChaosReport report = workload::run_chaos_scenario(
      chaos, obs_on ? &registry : nullptr, obs_on ? &tracer : nullptr,
      &telemetry);

  std::printf("scenario %s, %d blocks of %d txs\n%s",
              fault_scenario.name.c_str(), options.blocks, options.block_size,
              report.to_text().c_str());
  std::printf("equivalence vs fault-free reference: %s\n",
              report.ok() ? "PASS" : "FAIL");
  if (obs_on) {
    const int rc =
        obs::write_artifacts(options.flags, registry, tracer,
                             report.finished_at);
    if (rc != 0) return rc;
    const int telemetry_rc = telemetry.write();
    if (telemetry_rc != 0) return telemetry_rc;
  }
  return report.ok() ? 0 : 1;
}

int cmd_cluster(const Options& options) {
  cluster::ClusterConfig config;
  if (!options.scenario_path.empty()) {
    std::string error;
    const auto loaded = serve::load_scenario(options.scenario_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   options.scenario_path.c_str(), error.c_str());
      return 2;
    }
    if (!loaded->cluster) {
      std::fprintf(stderr, "%s: cluster needs a \"cluster\" section\n",
                   options.scenario_path.c_str());
      return 2;
    }
    config = *loaded->cluster;
  }
  if (!options.data_dir.empty()) config.data_dir = options.data_dir;

  sim::Simulation sim;
  cluster::ClusterDeployment deployment(sim, config);
  const std::string data_note =
      config.data_dir.empty() ? "" : ", data dir " + config.data_dir;
  std::printf("cluster %s: %d orgs x %d peers, %d orderers, block size %zu%s\n",
              config.name.c_str(), config.orgs, config.peers_per_org,
              config.orderers, config.block_size, data_note.c_str());

  const auto target = static_cast<std::uint64_t>(options.blocks);
  const sim::Time deadline = 600 * sim::kSecond;
  bool reached = true;
  if (options.kill_leader && target > 1) {
    reached = deployment.run_until_blocks(target / 2, deadline);
    const int leader = deployment.leader();
    if (leader >= 0) {
      std::printf("killing leader orderer %d at block %llu\n", leader,
                  static_cast<unsigned long long>(deployment.blocks_emitted()));
      deployment.kill_orderer(leader);
    }
  }
  reached = deployment.run_until_blocks(target, deadline) && reached;
  deployment.settle(2 * sim::kSecond);

  const bool converged = deployment.converged();
  std::printf("emitted %llu blocks (reference height %llu); "
              "dupes suppressed %llu, forks %llu\n",
              static_cast<unsigned long long>(deployment.blocks_emitted()),
              static_cast<unsigned long long>(
                  deployment.harness().reference_ledger().height()),
              static_cast<unsigned long long>(
                  deployment.ordering().duplicates_suppressed()),
              static_cast<unsigned long long>(
                  deployment.ordering().forks_detected()));
  for (int peer = 0; peer < deployment.peer_count(); ++peer)
    std::printf("  peer %d (org %d): height %llu%s\n", peer,
                deployment.org_of(peer),
                static_cast<unsigned long long>(deployment.peer_height(peer)),
                deployment.peer_online(peer) ? "" : " [offline]");
  if (deployment.state_transfers() > 0)
    std::printf("state transfers: %llu (%llu bytes, %llu blocks caught up)\n",
                static_cast<unsigned long long>(deployment.state_transfers()),
                static_cast<unsigned long long>(deployment.transfer_bytes()),
                static_cast<unsigned long long>(deployment.catch_up_blocks()));
  std::printf("convergence vs single-peer reference: %s\n",
              converged ? "PASS" : "FAIL");
  if (!converged && !deployment.divergence().empty())
    std::printf("divergence: %s\n", deployment.divergence().c_str());

  if (options.flags.wants_obs()) {
    obs::Registry registry;
    obs::Tracer tracer;
    deployment.publish_metrics(registry, "cluster");
    const int rc =
        obs::write_artifacts(options.flags, registry, tracer, sim.now());
    if (rc != 0) return rc;
  }
  return converged && reached ? 0 : 1;
}

}  // namespace

int cmd_serve(const Options& options) {
  serve::ServeOptions serve_options;  // defaults: steady 1000 tps Poisson
  std::optional<obs::SloConfig> inline_slo;
  if (!options.scenario_path.empty()) {
    std::string error;
    const auto loaded = serve::load_scenario(options.scenario_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   options.scenario_path.c_str(), error.c_str());
      return 2;
    }
    serve_options = loaded->serve;
    inline_slo = loaded->slo;
    if (loaded->faults && loaded->faults->data.any())
      std::fprintf(stderr,
                   "note: the \"faults\" section is not applied by `serve` "
                   "(clean-network harness); use `chaos --scenario`\n");
  }

  obs::Registry registry;
  obs::Tracer tracer;
  obs::Telemetry telemetry;
  const bool obs_on = options.flags.wants_obs();
  std::string telemetry_error;
  if (!telemetry.configure(options.flags, &telemetry_error)) {
    std::fprintf(stderr, "%s\n", telemetry_error.c_str());
    return 2;
  }
  if (inline_slo) telemetry.set_slo_config(std::move(inline_slo));
  const serve::ServeReport report =
      serve::run_serve(serve_options, obs_on ? &registry : nullptr,
                       obs_on ? &tracer : nullptr, &telemetry);

  std::printf("scenario %s: %s arrivals at %.0f tps for %.0f ms\n%s",
              serve_options.name.c_str(),
              serve_options.traffic.process == serve::ArrivalProcess::kPoisson
                  ? "poisson"
                  : serve_options.traffic.process ==
                            serve::ArrivalProcess::kMmpp
                        ? "mmpp"
                        : "diurnal",
              serve_options.traffic.rate_tps,
              static_cast<double>(serve_options.duration) / sim::kMillisecond,
              report.to_text().c_str());
  if (obs_on) {
    const int rc = obs::write_artifacts(options.flags, registry, tracer,
                                        report.finished_at);
    if (rc != 0) return rc;
    const int telemetry_rc = telemetry.write();
    if (telemetry_rc != 0) return telemetry_rc;
  }
  return report.ok() ? 0 : 1;
}

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    std::fprintf(stderr,
                 "usage: bmac_sim <throughput|resources|validate|protocol|"
                 "chaos|serve|cluster|recover> [flags]\n%s",
                 options.usage.c_str());
    return 2;
  }
  try {
    if (options.command == "throughput") return cmd_throughput(options);
    if (options.command == "resources") return cmd_resources(options);
    if (options.command == "validate") return cmd_validate(options);
    if (options.command == "protocol") return cmd_protocol(options);
    if (options.command == "chaos") return cmd_chaos(options);
    if (options.command == "serve") return cmd_serve(options);
    if (options.command == "cluster") return cmd_cluster(options);
    if (options.command == "recover") return cmd_recover(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", options.command.c_str());
  return 2;
}

#!/usr/bin/env python3
"""Markdown link checker (stdlib only), run by CI over the repo's docs.

Checks every link/image target in the given markdown files, both inline
(`[text](target)`) and reference-style (`[text][ref]` resolved through
`[ref]: target` definitions):
  - relative paths must exist on disk (relative to the file);
  - intra-document fragments (#section) must match a heading in the target
    file, using GitHub's anchor slug rules (lowercase, spaces -> dashes,
    punctuation stripped, duplicate headings suffixed -1, -2, ...);
  - http(s)/mailto targets are skipped (CI must not depend on the network);
  - a `[text][ref]` whose ref has no definition is itself an error.

Usage: check_md_links.py FILE.md [FILE.md ...]
Exits non-zero and prints one line per broken link.
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [text][ref] — must not be followed by ( or : (those are inline links and
# reference definitions respectively).
REFERENCE_LINK = re.compile(r"!?\[[^\]]+\]\[([^\]]*)\](?![(:])")
# [ref]: target, at line start.
REFERENCE_DEF = re.compile(r"^\s{0,3}\[([^\]]+)\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's heading -> #fragment rule (approximation, ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache={}) -> set:
    if path not in cache:
        text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
        # GitHub de-duplicates repeated headings by suffixing -1, -2, ...
        anchors, seen = set(), {}
        for heading in HEADING.findall(text):
            slug = github_slug(heading)
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_target(md: Path, target: str) -> list:
    if target.startswith(("http://", "https://", "mailto:")):
        return []
    path_part, _, fragment = target.partition("#")
    dest = md if not path_part else (md.parent / path_part).resolve()
    if not dest.exists():
        return [f"{md}: broken link -> {target}"]
    if fragment and dest.suffix == ".md":
        if fragment.lower() not in anchors_of(dest):
            return [f"{md}: missing anchor -> {target}"]
    return []


def check_file(md: Path) -> list:
    errors = []
    text = CODE_FENCE.sub("", md.read_text(encoding="utf-8"))
    defs = {ref.lower(): target for ref, target in REFERENCE_DEF.findall(text)}
    for match in INLINE_LINK.finditer(text):
        errors.extend(check_target(md, match.group(1)))
    for match in REFERENCE_LINK.finditer(text):
        ref = match.group(1).lower()
        if not ref:  # collapsed form [text][] uses the text as the ref
            ref = match.group(0).lstrip("!")[1:].split("]")[0].lower()
        if ref not in defs:
            errors.append(f"{md}: undefined reference -> [{match.group(1)}]")
            continue
        errors.extend(check_target(md, defs[ref]))
    for target in defs.values():
        errors.extend(check_target(md, target))
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    print(f"checked {len(argv) - 1} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

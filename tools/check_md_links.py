#!/usr/bin/env python3
"""Markdown link checker (stdlib only), run by CI over the repo's docs.

Checks every inline link/image target in the given markdown files:
  - relative paths must exist on disk (relative to the file);
  - intra-document fragments (#section) must match a heading in the target
    file, using GitHub's anchor slug rules (lowercase, spaces -> dashes,
    punctuation stripped);
  - http(s)/mailto targets are skipped (CI must not depend on the network).

Usage: check_md_links.py FILE.md [FILE.md ...]
Exits non-zero and prints one line per broken link.
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's heading -> #fragment rule (approximation, ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache={}) -> set:
    if path not in cache:
        text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(h) for h in HEADING.findall(text)}
    return cache[path]


def check_file(md: Path) -> list:
    errors = []
    text = CODE_FENCE.sub("", md.read_text(encoding="utf-8"))
    for match in INLINE_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        dest = md if not path_part else (md.parent / path_part).resolve()
        if not dest.exists():
            errors.append(f"{md}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md":
            if fragment.lower() not in anchors_of(dest):
                errors.append(f"{md}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error)
    print(f"checked {len(argv) - 1} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

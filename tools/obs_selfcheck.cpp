// End-to-end check of the observability artifacts: runs bmac_sim on a tiny
// configuration, then validates the emitted Chrome trace and metrics
// snapshot with the in-repo JSON parser. Wired into ctest (LABELS obs) so
// the artifact contract — what a user loads into Perfetto or scrapes into
// Prometheus — is covered by the default test run, not just the unit tests.
//
// Usage: obs_selfcheck <path-to-bmac_sim> [work-dir]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "obs/json.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::printf("  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const bm::obs::json::Value* find(const bm::obs::json::Value& v,
                                 const char* key) {
  return v.is_object() ? v.find(key) : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using bm::obs::json::Value;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path-to-bmac_sim> [work-dir]\n", argv[0]);
    return 2;
  }
  const std::string bmac_sim = argv[1];
  const std::string dir = argc > 2 ? argv[2] : ".";
  const std::string trace_path = dir + "/obs_selfcheck_trace.json";
  const std::string metrics_path = dir + "/obs_selfcheck_metrics.json";

  const std::string cmd = "\"" + bmac_sim +
                          "\" validate --blocks 2 --block-size 8"
                          " --trace-out \"" + trace_path + "\""
                          " --metrics-out \"" + metrics_path + "\""
                          " > /dev/null 2>&1";
  std::printf("running: %s\n", cmd.c_str());
  const int rc = std::system(cmd.c_str());
  check(rc == 0, "bmac_sim exits cleanly");
  if (rc != 0) return 1;

  // --- trace ----------------------------------------------------------------
  std::string error;
  const auto trace = bm::obs::json::parse(read_file(trace_path), &error);
  check(trace.has_value(), "trace parses as JSON (" + error + ")");
  if (!trace) return 1;

  const Value* events = find(*trace, "traceEvents");
  check(events != nullptr && events->is_array(),
        "trace has a traceEvents array");
  if (events == nullptr || !events->is_array()) return 1;
  check(!events->array.empty(), "traceEvents is non-empty");

  std::set<std::string> categories;
  std::map<std::pair<double, double>, double> last_end;  // (pid,tid) -> us
  bool spans_ordered = true;
  std::size_t spans = 0;
  for (const Value& e : events->array) {
    const Value* ph = find(e, "ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const Value* cat = find(e, "cat");
    if (cat != nullptr && cat->is_string() && !cat->string.empty())
      categories.insert(cat->string);
    if (ph->string != "X") continue;
    ++spans;
    const Value* pid = find(e, "pid");
    const Value* tid = find(e, "tid");
    const Value* ts = find(e, "ts");
    const Value* dur = find(e, "dur");
    if (pid == nullptr || tid == nullptr || ts == nullptr || dur == nullptr) {
      spans_ordered = false;
      continue;
    }
    // Complete spans on one (pid, tid) lane must not partially overlap, or
    // Perfetto renders them wrong.
    const auto key = std::make_pair(pid->number, tid->number);
    const auto it = last_end.find(key);
    if (it != last_end.end() && ts->number < it->second) spans_ordered = false;
    last_end[key] = ts->number + dur->number;
  }
  check(spans > 0, "trace contains complete ('X') spans");
  check(spans_ordered, "spans nest per (pid, tid) lane without overlap");

  std::string cat_list;
  for (const auto& c : categories) cat_list += c + " ";
  check(categories.size() >= 5,
        "trace has >= 5 span categories (got: " + cat_list + ")");
  for (const char* required :
       {"protocol", "fifo", "ecdsa", "monitor", "host-commit"}) {
    check(categories.count(required) != 0,
          std::string("trace covers category '") + required + "'");
  }

  // --- metrics --------------------------------------------------------------
  const auto metrics = bm::obs::json::parse(read_file(metrics_path), &error);
  check(metrics.has_value(), "metrics parse as JSON (" + error + ")");
  if (!metrics) return 1;

  const Value* at_ns = find(*metrics, "at_ns");
  check(at_ns != nullptr && at_ns->is_number() && at_ns->number > 0,
        "metrics carry a positive at_ns snapshot time");

  const Value* gauges = find(*metrics, "gauges");
  const Value* util =
      gauges != nullptr ? find(*gauges, "bmac_engine_utilization") : nullptr;
  check(util != nullptr && util->is_number(),
        "metrics include the bmac_engine_utilization gauge");
  if (util != nullptr)
    check(util->number > 0 && util->number <= 1.0,
          "engine utilization is a sane fraction");

  const Value* histograms = find(*metrics, "histograms");
  const Value* latency =
      histograms != nullptr
          ? find(*histograms, "bmac_block_validation_latency_ms")
          : nullptr;
  check(latency != nullptr, "metrics include the block-latency histogram");
  if (latency != nullptr) {
    const Value* count = find(*latency, "count");
    check(count != nullptr && count->number >= 2,
          "latency histogram observed every block");
  }

  const Value* counters = find(*metrics, "counters");
  const Value* packets =
      counters != nullptr ? find(*counters, "bmac_packets_processed_total")
                          : nullptr;
  check(packets != nullptr && packets->number > 0,
        "metrics count processed packets");

  if (g_failures == 0) {
    std::printf("obs_selfcheck: all checks passed\n");
    return 0;
  }
  std::printf("obs_selfcheck: %d check(s) FAILED\n", g_failures);
  return 1;
}

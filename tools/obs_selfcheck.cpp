// End-to-end check of the observability artifacts: runs bmac_sim on a tiny
// configuration, then validates the emitted Chrome trace and metrics
// snapshot with the in-repo JSON parser. Wired into ctest (LABELS obs) so
// the artifact contract — what a user loads into Perfetto or scrapes into
// Prometheus — is covered by the default test run, not just the unit tests.
//
// Phase 2 validates the continuous-telemetry artifacts the same way: a
// scenario_burst run with --sample-interval/--slo-config/--flight-out must
// produce a well-formed time series (monotone timestamps, monotone
// counters, aligned rate columns), an SLO alert log with at least one fire
// (the burst overloads the front end by design), a triggered flight dump —
// and a byte-identical set of files when rerun (docs/OBSERVABILITY.md).
//
// Usage: obs_selfcheck <path-to-bmac_sim> [work-dir]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "obs/json.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::printf("  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

const bm::obs::json::Value* find(const bm::obs::json::Value& v,
                                 const char* key) {
  return v.is_object() ? v.find(key) : nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using bm::obs::json::Value;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <path-to-bmac_sim> [work-dir]\n", argv[0]);
    return 2;
  }
  const std::string bmac_sim = argv[1];
  const std::string dir = argc > 2 ? argv[2] : ".";
  const std::string trace_path = dir + "/obs_selfcheck_trace.json";
  const std::string metrics_path = dir + "/obs_selfcheck_metrics.json";

  const std::string cmd = "\"" + bmac_sim +
                          "\" validate --blocks 2 --block-size 8"
                          " --trace-out \"" + trace_path + "\""
                          " --metrics-out \"" + metrics_path + "\""
                          " > /dev/null 2>&1";
  std::printf("running: %s\n", cmd.c_str());
  const int rc = std::system(cmd.c_str());
  check(rc == 0, "bmac_sim exits cleanly");
  if (rc != 0) return 1;

  // --- trace ----------------------------------------------------------------
  std::string error;
  const auto trace = bm::obs::json::parse(read_file(trace_path), &error);
  check(trace.has_value(), "trace parses as JSON (" + error + ")");
  if (!trace) return 1;

  const Value* events = find(*trace, "traceEvents");
  check(events != nullptr && events->is_array(),
        "trace has a traceEvents array");
  if (events == nullptr || !events->is_array()) return 1;
  check(!events->array.empty(), "traceEvents is non-empty");

  std::set<std::string> categories;
  std::map<std::pair<double, double>, double> last_end;  // (pid,tid) -> us
  bool spans_ordered = true;
  std::size_t spans = 0;
  for (const Value& e : events->array) {
    const Value* ph = find(e, "ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const Value* cat = find(e, "cat");
    if (cat != nullptr && cat->is_string() && !cat->string.empty())
      categories.insert(cat->string);
    if (ph->string != "X") continue;
    ++spans;
    const Value* pid = find(e, "pid");
    const Value* tid = find(e, "tid");
    const Value* ts = find(e, "ts");
    const Value* dur = find(e, "dur");
    if (pid == nullptr || tid == nullptr || ts == nullptr || dur == nullptr) {
      spans_ordered = false;
      continue;
    }
    // Complete spans on one (pid, tid) lane must not partially overlap, or
    // Perfetto renders them wrong.
    const auto key = std::make_pair(pid->number, tid->number);
    const auto it = last_end.find(key);
    if (it != last_end.end() && ts->number < it->second) spans_ordered = false;
    last_end[key] = ts->number + dur->number;
  }
  check(spans > 0, "trace contains complete ('X') spans");
  check(spans_ordered, "spans nest per (pid, tid) lane without overlap");

  std::string cat_list;
  for (const auto& c : categories) cat_list += c + " ";
  check(categories.size() >= 5,
        "trace has >= 5 span categories (got: " + cat_list + ")");
  for (const char* required :
       {"protocol", "fifo", "ecdsa", "monitor", "host-commit"}) {
    check(categories.count(required) != 0,
          std::string("trace covers category '") + required + "'");
  }

  // --- metrics --------------------------------------------------------------
  const auto metrics = bm::obs::json::parse(read_file(metrics_path), &error);
  check(metrics.has_value(), "metrics parse as JSON (" + error + ")");
  if (!metrics) return 1;

  const Value* at_ns = find(*metrics, "at_ns");
  check(at_ns != nullptr && at_ns->is_number() && at_ns->number > 0,
        "metrics carry a positive at_ns snapshot time");

  const Value* gauges = find(*metrics, "gauges");
  const Value* util =
      gauges != nullptr ? find(*gauges, "bmac_engine_utilization") : nullptr;
  check(util != nullptr && util->is_number(),
        "metrics include the bmac_engine_utilization gauge");
  if (util != nullptr)
    check(util->number > 0 && util->number <= 1.0,
          "engine utilization is a sane fraction");

  const Value* histograms = find(*metrics, "histograms");
  const Value* latency =
      histograms != nullptr
          ? find(*histograms, "bmac_block_validation_latency_ms")
          : nullptr;
  check(latency != nullptr, "metrics include the block-latency histogram");
  if (latency != nullptr) {
    const Value* count = find(*latency, "count");
    check(count != nullptr && count->number >= 2,
          "latency histogram observed every block");
  }

  const Value* counters = find(*metrics, "counters");
  const Value* packets =
      counters != nullptr ? find(*counters, "bmac_packets_processed_total")
                          : nullptr;
  check(packets != nullptr && packets->number > 0,
        "metrics count processed packets");

  // --- phase 2: continuous telemetry ---------------------------------------
#ifdef BM_REPO_ROOT
  const std::string repo = BM_REPO_ROOT;
  const std::string ts_path = dir + "/obs_selfcheck_ts.json";
  const std::string csv_path = dir + "/obs_selfcheck_ts.csv";
  const std::string slo_path = dir + "/obs_selfcheck_slo.json";
  const std::string flight_path = dir + "/obs_selfcheck_flight.json";

  const auto telemetry_cmd = [&](const std::string& suffix) {
    return "\"" + bmac_sim + "\" serve --scenario \"" + repo +
           "/configs/scenario_burst.json\" --sample-interval 5"
           " --timeseries-out \"" + ts_path + suffix + "\""
           " --timeseries-csv \"" + csv_path + suffix + "\""
           " --slo-config \"" + repo + "/configs/slo_default.json\""
           " --slo-out \"" + slo_path + suffix + "\""
           " --flight-out \"" + flight_path + suffix + "\""
           " > /dev/null 2>&1";
  };
  std::printf("running: %s\n", telemetry_cmd("").c_str());
  const int rc2 = std::system(telemetry_cmd("").c_str());
  check(rc2 == 0, "bmac_sim serve (telemetry) exits cleanly");
  if (rc2 != 0) return 1;

  // Time series: schema + aligned, monotone columns.
  const auto ts = bm::obs::json::parse(read_file(ts_path), &error);
  check(ts.has_value(), "timeseries parses as JSON (" + error + ")");
  if (!ts) return 1;
  const Value* schema = find(*ts, "schema_version");
  check(schema != nullptr && schema->number == 1,
        "timeseries schema_version is 1");
  const Value* kind = find(*ts, "kind");
  check(kind != nullptr && kind->string == "timeseries",
        "timeseries kind tag");
  const Value* ts_at = find(*ts, "at_ns");
  check(ts_at != nullptr && ts_at->is_array() && ts_at->array.size() > 2,
        "timeseries has > 2 samples");
  bool at_monotone = true;
  if (ts_at != nullptr && ts_at->is_array())
    for (std::size_t i = 1; i < ts_at->array.size(); ++i)
      if (ts_at->array[i].number <= ts_at->array[i - 1].number)
        at_monotone = false;
  check(at_monotone, "timeseries at_ns strictly increases");

  const Value* series = find(*ts, "series");
  check(series != nullptr && series->is_object() && !series->object.empty(),
        "timeseries has series");
  bool columns_aligned = true, counters_monotone = true, has_rates = false;
  if (series != nullptr && series->is_object()) {
    for (const auto& [name, entry] : series->object) {
      const Value* values = find(entry, "values");
      if (values == nullptr || !values->is_array() || ts_at == nullptr ||
          values->array.size() != ts_at->array.size())
        columns_aligned = false;
      const Value* type = find(entry, "type");
      const Value* rates = find(entry, "rate_per_s");
      if (type != nullptr && type->string == "counter") {
        if (rates == nullptr || !rates->is_array() || values == nullptr ||
            rates->array.size() != values->array.size())
          columns_aligned = false;
        else
          has_rates = true;
        if (values != nullptr && values->is_array())
          for (std::size_t i = 1; i < values->array.size(); ++i)
            if (values->array[i].number < values->array[i - 1].number)
              counters_monotone = false;
      }
    }
  }
  check(columns_aligned, "every series column aligns with at_ns (and rates)");
  check(counters_monotone, "counter series never decrease");
  check(has_rates, "counter series carry derived rate_per_s columns");

  // CSV: one header plus one row per sample.
  const std::string csv = read_file(csv_path);
  std::size_t csv_rows = 0;
  for (const char c : csv) csv_rows += c == '\n' ? 1 : 0;
  check(ts_at != nullptr && csv_rows == ts_at->array.size() + 1,
        "csv has one row per sample plus the header");

  // SLO alert log: the burst must trip at least one rule.
  const auto slo = bm::obs::json::parse(read_file(slo_path), &error);
  check(slo.has_value(), "slo log parses as JSON (" + error + ")");
  if (!slo) return 1;
  const Value* slo_kind = find(*slo, "kind");
  check(slo_kind != nullptr && slo_kind->string == "slo_alerts",
        "slo log kind tag");
  const Value* fires = find(*slo, "fires");
  check(fires != nullptr && fires->number >= 1,
        "serve_burst fires at least one SLO alert");
  const Value* slo_events = find(*slo, "events");
  bool events_ordered = true;
  if (slo_events != nullptr && slo_events->is_array()) {
    double last = -1;
    for (const Value& e : slo_events->array) {
      const Value* at = find(e, "at_ns");
      if (at == nullptr || at->number < last) events_ordered = false;
      if (at != nullptr) last = at->number;
    }
  }
  check(events_ordered, "slo transitions are time-ordered");

  // Flight recorder: the first alert freezes a post-mortem.
  const auto flight = bm::obs::json::parse(read_file(flight_path), &error);
  check(flight.has_value(), "flight dump parses as JSON (" + error + ")");
  if (!flight) return 1;
  const Value* trigger = find(*flight, "trigger");
  check(trigger != nullptr && trigger->is_object(),
        "flight dump was written by a trigger");
  if (trigger != nullptr && trigger->is_object()) {
    const Value* reason = find(*trigger, "reason");
    check(reason != nullptr &&
              reason->string.rfind("slo:", 0) == 0,
          "flight trigger names the SLO rule (" +
              (reason != nullptr ? reason->string : "<none>") + ")");
  }
  const Value* flight_events = find(*flight, "events");
  check(flight_events != nullptr && flight_events->is_array() &&
            !flight_events->array.empty(),
        "flight dump holds the pre-trigger event window");

  // Determinism: the identical command must reproduce every artifact byte
  // for byte.
  const int rc3 = std::system(telemetry_cmd(".rerun").c_str());
  check(rc3 == 0, "telemetry rerun exits cleanly");
  if (rc3 == 0) {
    for (const std::string& p : {ts_path, csv_path, slo_path, flight_path})
      check(read_file(p) == read_file(p + ".rerun"),
            "rerun byte-identical: " + p);
  }
#else
  std::printf("(phase 2 skipped: BM_REPO_ROOT not defined)\n");
#endif

  if (g_failures == 0) {
    std::printf("obs_selfcheck: all checks passed\n");
    return 0;
  }
  std::printf("obs_selfcheck: %d check(s) FAILED\n", g_failures);
  return 1;
}
